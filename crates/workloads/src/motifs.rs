//! Program motifs: parameterized code patterns that reproduce the workload
//! structure the paper's experiments depend on.
//!
//! Each motif emits a small loop into a [`ProgramBuilder`]:
//!
//! - [`move_glue`] — x86-style destructive-op glue: eliminable 32/64-bit
//!   moves (with a configurable fraction of 8/16-bit merge moves that ME
//!   must skip), feeding dependent work so elimination shortens the chain.
//! - [`spill_reload`] — compiler spill/reload pairs at stable distances;
//!   optionally with history-correlated path lengths between store and load
//!   so only history-indexed distance predictors can learn the distance.
//! - [`redundant_loads`] — the same slot loaded repeatedly in-window
//!   (load-load SMB pairs).
//! - [`pointer_alias`] — stores through a slowly-computed pointer that
//!   sometimes aliases a later load: memory-order violations at first, Store
//!   Sets false dependencies afterwards.
//! - [`streaming`] — strided FP streaming over configurable working sets.
//! - [`pointer_chase`] — dependent pseudo-random walks (cache-miss bound).
//! - [`branchy`] — data-dependent branches with configurable bias.
//! - [`call_leaf`] — call/return to move-heavy leaf functions (RAS + ME).

use crate::rng::Xorshift;
use regshare_isa::op::{AluOp, Cond, MoveWidth, Op, Operand};
use regshare_isa::program::ProgramBuilder;
use regshare_types::ArchReg;

/// Shared emission context.
#[derive(Debug)]
pub struct EmitCtx<'a> {
    /// Builder receiving the code.
    pub b: &'a mut ProgramBuilder,
    /// Deterministic randomness for structure choices.
    pub rng: &'a mut Xorshift,
    /// Base address of this motif's private memory region.
    pub region: u64,
    /// Fraction (0..1) of integer work replaced by FP work.
    pub fp_mix: f64,
}

// Register conventions (integer class):
//   r1  induction variable
//   r2  scratch address
//   r3  inner loop counter
//   r4..r6 region base pointers
//   r8..r13 data values
//   r14 pseudo-random data
//   r15 accumulator
fn r(i: usize) -> ArchReg {
    ArchReg::int(i)
}
fn f(i: usize) -> ArchReg {
    ArchReg::fp(i)
}

/// Emits `trips`-iteration counted loop around `body` (r3 is the counter).
#[allow(dead_code)] // exercised by tests; motifs use counted_loop_ctx
fn counted_loop(b: &mut ProgramBuilder, trips: u64, body: impl FnOnce(&mut ProgramBuilder)) {
    b.push(Op::LoadImm {
        dst: r(3),
        imm: trips,
    });
    let top = b.here();
    body(b);
    b.push(Op::IntAlu {
        op: AluOp::Sub,
        dst: r(3),
        src1: r(3),
        src2: Operand::Imm(1),
    });
    b.push(Op::CondBranch {
        cond: Cond::Ne,
        src1: r(3),
        src2: Operand::Imm(0),
        target: top,
    });
}

/// Emits one unit of "work": an ALU/FP op over the data registers.
fn work_uop(ctx: &mut EmitCtx<'_>) {
    if ctx.rng.chance(ctx.fp_mix * 100.0) {
        let (d, s1, s2) = (
            f(8 + ctx.rng.below(4) as usize),
            f(8 + ctx.rng.below(4) as usize),
            f(12 + ctx.rng.below(4) as usize),
        );
        match ctx.rng.below(10) {
            0 => ctx.b.push(Op::FpMul {
                dst: d,
                src1: s1,
                src2: s2,
            }),
            1 => ctx.b.push(Op::FpDiv {
                dst: d,
                src1: s1,
                src2: s2,
            }),
            _ => ctx.b.push(Op::FpAdd {
                dst: d,
                src1: s1,
                src2: s2,
            }),
        };
    } else if ctx.rng.chance(25.0) {
        // Serial dependency chain through the accumulator: keeps ILP at
        // realistic levels so the machine is not purely issue-bound.
        let s2 = Operand::Reg(r(8 + ctx.rng.below(5) as usize));
        let op = *ctx.rng.pick(&[AluOp::Add, AluOp::Sub, AluOp::Xor]);
        ctx.b.push(Op::IntAlu {
            op,
            dst: r(15),
            src1: r(15),
            src2: s2,
        });
    } else {
        let d = r(8 + ctx.rng.below(5) as usize);
        let s1 = r(8 + ctx.rng.below(5) as usize);
        let s2 = if ctx.rng.chance(50.0) {
            Operand::Reg(r(8 + ctx.rng.below(5) as usize))
        } else {
            Operand::Imm(ctx.rng.below(1 << 16) | 1)
        };
        let op = *ctx
            .rng
            .pick(&[AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And, AluOp::Or]);
        match ctx.rng.below(24) {
            0 => ctx.b.push(Op::IntMul {
                dst: d,
                src1: s1,
                src2: s2,
            }),
            1 => ctx.b.push(Op::IntDiv {
                dst: d,
                src1: s1,
                src2: s2,
            }),
            _ => ctx.b.push(Op::IntAlu {
                op,
                dst: d,
                src1: s1,
                src2: s2,
            }),
        };
    }
}

/// Move-heavy glue block: `density` percent of the ~30 emitted µ-ops are
/// register moves; `merge_pct` percent of those are 8/16-bit merge moves
/// (not eliminable). Moves feed dependent work so eliminating them pays.
pub fn move_glue(ctx: &mut EmitCtx<'_>, trips: u64, density: f64, merge_pct: f64, fp_moves: bool) {
    let density = density.clamp(0.0, 95.0);
    let mut plan: Vec<bool> = Vec::new();
    for _ in 0..30 {
        plan.push(ctx.rng.chance(density));
    }
    let merges: Vec<bool> = (0..30).map(|_| ctx.rng.chance(merge_pct)).collect();
    let seeds: Vec<u64> = (0..4).map(|_| ctx.rng.next_u64()).collect();
    let region = ctx.region;
    ctx.b.push(Op::LoadImm {
        dst: r(4),
        imm: region,
    });
    for (i, s) in seeds.iter().enumerate() {
        ctx.b.push(Op::LoadImm {
            dst: r(8 + i),
            imm: *s,
        });
    }
    let rng_choices: Vec<(usize, usize, bool)> = (0..30)
        .map(|_| {
            (
                8 + ctx.rng.below(5) as usize,
                8 + ctx.rng.below(5) as usize,
                ctx.rng.chance(ctx.fp_mix * 100.0) && fp_moves,
            )
        })
        .collect();
    let mut mk_work: Vec<bool> = Vec::new();
    for _ in 0..30 {
        mk_work.push(ctx.rng.chance(50.0));
    }
    counted_loop_ctx(ctx, trips, |ctx| {
        for i in 0..30 {
            if plan[i] {
                let (a, b_, use_fp) = rng_choices[i];
                if use_fp {
                    ctx.b.push(Op::MovFp {
                        dst: f(a),
                        src: f(b_),
                    });
                } else if merges[i] {
                    let width = if i % 2 == 0 {
                        MoveWidth::W8
                    } else {
                        MoveWidth::W16
                    };
                    ctx.b.push(Op::MovInt {
                        dst: r(a),
                        src: r(b_),
                        width,
                    });
                } else {
                    let width = if i % 3 == 0 {
                        MoveWidth::W32
                    } else {
                        MoveWidth::W64
                    };
                    ctx.b.push(Op::MovInt {
                        dst: r(a),
                        src: r(b_),
                        width,
                    });
                    // A minority of moves sit on the critical path (feed the
                    // serial accumulator); most are glue whose elimination
                    // only saves issue slots — the reason the paper sees
                    // elimination rate and speedup decorrelated (§6.1).
                    if i % 3 == 1 {
                        ctx.b.push(Op::IntAlu {
                            op: AluOp::Add,
                            dst: r(15),
                            src1: r(a),
                            src2: Operand::Reg(r(15)),
                        });
                    }
                }
            } else if mk_work[i] {
                work_uop(ctx);
            }
        }
    });
}

/// Wrapper running `body(ctx)` under a counted loop (r3).
fn counted_loop_ctx(ctx: &mut EmitCtx<'_>, trips: u64, body: impl FnOnce(&mut EmitCtx<'_>)) {
    ctx.b.push(Op::LoadImm {
        dst: r(3),
        imm: trips,
    });
    let top = ctx.b.here();
    body(ctx);
    ctx.b.push(Op::IntAlu {
        op: AluOp::Sub,
        dst: r(3),
        src1: r(3),
        src2: Operand::Imm(1),
    });
    ctx.b.push(Op::CondBranch {
        cond: Cond::Ne,
        src1: r(3),
        src2: Operand::Imm(0),
        target: top,
    });
}

/// Spill/reload pairs: a producer defines a value, it is stored to a fixed
/// slot, `work` µ-ops later it is reloaded and used. `slots` distinct slots
/// rotate. With `variable_paths`, a data-dependent branch inserts extra work
/// between store and load, making the distance *history-correlated* (only
/// history-indexed predictors capture it).
pub fn spill_reload(
    ctx: &mut EmitCtx<'_>,
    trips: u64,
    slots: u64,
    work: usize,
    variable_paths: bool,
) {
    let slots = slots.max(1);
    let region = ctx.region;
    ctx.b.push(Op::LoadImm {
        dst: r(4),
        imm: region,
    }); // slot base
    ctx.b.push(Op::LoadImm {
        dst: r(5),
        imm: region + 0x10000,
    }); // random data
    ctx.b.push(Op::LoadImm { dst: r(1), imm: 0 }); // induction
    ctx.b.push(Op::LoadImm {
        dst: r(8),
        imm: ctx.rng.next_u64(),
    });
    let extra: usize = 1 + ctx.rng.below(6) as usize;
    let pre_work: Vec<()> = vec![(); work];
    counted_loop_ctx(ctx, trips, |ctx| {
        // Rotate the slot: r2 = base + (i % slots)*8.
        ctx.b.push(Op::IntAlu {
            op: AluOp::And,
            dst: r(2),
            src1: r(1),
            src2: Operand::Imm(slots.next_power_of_two() - 1),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Shl,
            dst: r(2),
            src1: r(2),
            src2: Operand::Imm(3),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(2),
            src1: r(2),
            src2: Operand::Reg(r(4)),
        });
        // Producer of the spilled value.
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(8),
            src1: r(8),
            src2: Operand::Imm(0x9e37),
        });
        // Spill.
        ctx.b.push(Op::Store {
            data: r(8),
            base: r(2),
            offset: 0,
            size: 8,
        });
        // Fixed work between spill and reload.
        for _ in &pre_work {
            work_uop(ctx);
        }
        if variable_paths {
            // Data-dependent detour: extra µ-ops on one side, so the
            // store→load distance depends on branch history.
            ctx.b.push(Op::IntAlu {
                op: AluOp::Shl,
                dst: r(14),
                src1: r(1),
                src2: Operand::Imm(3),
            });
            ctx.b.push(Op::IntAlu {
                op: AluOp::And,
                dst: r(14),
                src1: r(14),
                src2: Operand::Imm(0x3f8),
            });
            ctx.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(14),
                src1: r(14),
                src2: Operand::Reg(r(5)),
            });
            ctx.b.push(Op::Load {
                dst: r(14),
                base: r(14),
                offset: 0,
                size: 8,
            });
            let br = ctx.b.push(Op::CondBranch {
                cond: Cond::BitSet,
                src1: r(14),
                src2: Operand::Imm(0),
                target: 0, // patched
            });
            for _ in 0..extra {
                work_uop(ctx);
            }
            let join = ctx.b.here();
            ctx.b.patch_target(br, join);
        }
        // Reload and use: the reloaded value feeds the *next* iteration's
        // producer, so the loop-carried dependency passes through memory —
        // exactly the spill-induced load-to-use delay the paper's
        // introduction motivates, and what SMB collapses back into a
        // register dependency.
        ctx.b.push(Op::Load {
            dst: r(9),
            base: r(2),
            offset: 0,
            size: 8,
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Xor,
            dst: r(8),
            src1: r(9),
            src2: Operand::Imm(0x5a5a),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(15),
            src1: r(15),
            src2: Operand::Reg(r(9)),
        });
        // Advance induction.
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(1),
            src1: r(1),
            src2: Operand::Imm(1),
        });
    });
}

/// Redundant loads: one store then several loads of the same slot inside
/// the window, separated by `gap` work µ-ops (load-load SMB pairs).
/// With `value_chained`, each load's address computation consumes the
/// previous load's value (it always resolves to the same slot), so the
/// chain serializes on load latency — the case where load-load bypassing
/// collapses the whole chain into register dependencies (§6.2).
pub fn redundant_loads_ext(
    ctx: &mut EmitCtx<'_>,
    trips: u64,
    chain: usize,
    gap: usize,
    value_chained: bool,
) {
    let region = ctx.region;
    ctx.b.push(Op::LoadImm {
        dst: r(4),
        imm: region,
    });
    ctx.b.push(Op::LoadImm {
        dst: r(8),
        imm: ctx.rng.next_u64(),
    });
    let chain = chain.max(2);
    counted_loop_ctx(ctx, trips, |ctx| {
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(8),
            src1: r(8),
            src2: Operand::Imm(0x5bd1),
        });
        ctx.b.push(Op::Store {
            data: r(8),
            base: r(4),
            offset: 0,
            size: 8,
        });
        let mut last = r(8);
        for k in 0..chain {
            for _ in 0..gap {
                work_uop(ctx);
            }
            let dst = r(9 + (k % 3));
            if value_chained {
                // addr = slot + (last & 0): value-dependent but constant.
                ctx.b.push(Op::IntAlu {
                    op: AluOp::And,
                    dst: r(2),
                    src1: last,
                    src2: Operand::Imm(0),
                });
                ctx.b.push(Op::IntAlu {
                    op: AluOp::Add,
                    dst: r(2),
                    src1: r(2),
                    src2: Operand::Reg(r(4)),
                });
                ctx.b.push(Op::Load {
                    dst,
                    base: r(2),
                    offset: 0,
                    size: 8,
                });
            } else {
                ctx.b.push(Op::Load {
                    dst,
                    base: r(4),
                    offset: 0,
                    size: 8,
                });
            }
            ctx.b.push(Op::IntAlu {
                op: AluOp::Xor,
                dst: r(15),
                src1: r(15),
                src2: Operand::Reg(dst),
            });
            last = dst;
        }
        // Loop-carried through the redundant loads: the next store's data
        // descends from the last reload (what load-load bypassing shortens).
        ctx.b.push(Op::IntAlu {
            op: AluOp::Xor,
            dst: r(8),
            src1: r(8),
            src2: Operand::Reg(last),
        });
    });
}

/// Redundant loads with the default (address-independent) chaining.
pub fn redundant_loads(ctx: &mut EmitCtx<'_>, trips: u64, chain: usize, gap: usize) {
    redundant_loads_ext(ctx, trips, chain, gap, false);
}

/// Pointer aliasing: every iteration a *fast* store F writes a slot and a
/// load L reads it back at a stable distance; a second store S through a
/// *slowly computed* pointer (its index passes through a divide) writes the
/// same slot in `alias_pct` percent of iterations — between F and L in
/// program order.
///
/// First encounters raise memory-order violations (L reads before S's
/// address resolves). Store Sets then chains L behind S, which is a *false*
/// dependency in the other `100-alias_pct` percent of iterations: L stalls
/// ~30 cycles for nothing. Because L's true producer (F's data) sits at a
/// stable instruction distance, the TAGE-like predictor can bypass L and
/// drop the false dependency — the §3.1/Figure 6(b) effect.
pub fn pointer_alias(ctx: &mut EmitCtx<'_>, trips: u64, alias_pct: f64, span: u64) {
    let region = ctx.region;
    let threshold = ((alias_pct.clamp(0.0, 100.0) / 100.0) * u64::MAX as f64) as u64;
    ctx.b.push(Op::LoadImm {
        dst: r(4),
        imm: region,
    }); // slot array
    ctx.b.push(Op::LoadImm {
        dst: r(5),
        imm: region + 0x40000,
    }); // random data
    ctx.b.push(Op::LoadImm {
        dst: r(6),
        imm: region + 0x80000,
    }); // non-alias side
    ctx.b.push(Op::LoadImm { dst: r(1), imm: 0 });
    ctx.b.push(Op::LoadImm {
        dst: r(8),
        imm: ctx.rng.next_u64(),
    });
    let span_mask = span.next_power_of_two() - 1;
    counted_loop_ctx(ctx, trips, |ctx| {
        // Slot for this iteration.
        ctx.b.push(Op::IntAlu {
            op: AluOp::Shl,
            dst: r(2),
            src1: r(1),
            src2: Operand::Imm(3),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::And,
            dst: r(2),
            src1: r(2),
            src2: Operand::Imm(span_mask << 3),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(2),
            src1: r(2),
            src2: Operand::Reg(r(4)),
        });
        // F: fast store of chained data.
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(8),
            src1: r(8),
            src2: Operand::Imm(0x9e37),
        });
        ctx.b.push(Op::Store {
            data: r(8),
            base: r(2),
            offset: 0,
            size: 8,
        });
        // Random value for the aliasing decision.
        ctx.b.push(Op::IntAlu {
            op: AluOp::Shl,
            dst: r(14),
            src1: r(1),
            src2: Operand::Imm(3),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::And,
            dst: r(14),
            src1: r(14),
            src2: Operand::Imm(0x7f8),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(14),
            src1: r(14),
            src2: Operand::Reg(r(5)),
        });
        ctx.b.push(Op::Load {
            dst: r(14),
            base: r(14),
            offset: 0,
            size: 8,
        });
        // Slow pointer: the index passes through an unpipelined divide, so
        // S's address resolves ~25+ cycles later than L's.
        ctx.b.push(Op::IntAlu {
            op: AluOp::Or,
            dst: r(12),
            src1: r(14),
            src2: Operand::Imm(1),
        });
        ctx.b.push(Op::IntDiv {
            dst: r(13),
            src1: r(12),
            src2: Operand::Reg(r(12)),
        });
        ctx.b.push(Op::IntMul {
            dst: r(10),
            src1: r(2),
            src2: Operand::Reg(r(13)),
        });
        // alias? S writes the same slot : S writes a private region.
        let br = ctx.b.push(Op::CondBranch {
            cond: Cond::Lt,
            src1: r(14),
            src2: Operand::Imm(threshold),
            target: 0, // patched → alias path (S already points at the slot)
        });
        // Non-alias side: redirect S to the private region.
        ctx.b.push(Op::IntAlu {
            op: AluOp::Sub,
            dst: r(10),
            src1: r(10),
            src2: Operand::Reg(r(4)),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(10),
            src1: r(10),
            src2: Operand::Reg(r(6)),
        });
        let join = ctx.b.here();
        ctx.b.patch_target(br, join);
        // S: the slow store.
        ctx.b.push(Op::IntAlu {
            op: AluOp::Xor,
            dst: r(9),
            src1: r(14),
            src2: Operand::Imm(0xf00d),
        });
        ctx.b.push(Op::Store {
            data: r(9),
            base: r(10),
            offset: 0,
            size: 8,
        });
        // L: reads the slot back; true producer is F's data (stable
        // distance) except on alias iterations (S's data).
        ctx.b.push(Op::Load {
            dst: r(11),
            base: r(2),
            offset: 0,
            size: 8,
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(15),
            src1: r(15),
            src2: Operand::Reg(r(11)),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(1),
            src1: r(1),
            src2: Operand::Imm(1),
        });
    });
}

/// Strided FP streaming kernel over a `ws_kb`-KB working set.
pub fn streaming(ctx: &mut EmitCtx<'_>, trips: u64, ws_kb: usize) {
    let region = ctx.region;
    let mask = ((ws_kb.max(1) * 1024) as u64).next_power_of_two() - 1;
    ctx.b.push(Op::LoadImm {
        dst: r(4),
        imm: region,
    });
    ctx.b.push(Op::LoadImm {
        dst: r(5),
        imm: region + mask + 1,
    });
    // Start each visit at a different (accumulator-derived) offset so the
    // stream eventually covers the whole working set instead of re-touching
    // the same few lines every outer iteration.
    ctx.b.push(Op::IntAlu {
        op: AluOp::And,
        dst: r(1),
        src1: r(15),
        src2: Operand::Imm(mask & !63),
    });
    counted_loop_ctx(ctx, trips, |ctx| {
        ctx.b.push(Op::IntAlu {
            op: AluOp::And,
            dst: r(2),
            src1: r(1),
            src2: Operand::Imm(mask & !7),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(2),
            src1: r(2),
            src2: Operand::Reg(r(4)),
        });
        ctx.b.push(Op::Load {
            dst: f(8),
            base: r(2),
            offset: 0,
            size: 8,
        });
        ctx.b.push(Op::Load {
            dst: f(9),
            base: r(2),
            offset: 8,
            size: 8,
        });
        ctx.b.push(Op::FpAdd {
            dst: f(10),
            src1: f(8),
            src2: f(9),
        });
        ctx.b.push(Op::FpMul {
            dst: f(11),
            src1: f(10),
            src2: f(8),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::And,
            dst: r(2),
            src1: r(1),
            src2: Operand::Imm(mask & !7),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(2),
            src1: r(2),
            src2: Operand::Reg(r(5)),
        });
        ctx.b.push(Op::Store {
            data: f(11),
            base: r(2),
            offset: 0,
            size: 8,
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(1),
            src1: r(1),
            src2: Operand::Imm(64),
        });
    });
}

/// Dependent pseudo-random pointer chase within a `ws_kb`-KB region.
///
/// The next address mixes the loaded value with an induction counter so the
/// walk never collapses into the ~√N-node cycle of a fixed random mapping
/// (which would fit in cache and defeat the motif's purpose).
pub fn pointer_chase(ctx: &mut EmitCtx<'_>, trips: u64, ws_kb: usize) {
    let region = ctx.region;
    let mask = ((ws_kb.max(1) * 1024) as u64).next_power_of_two() - 1;
    ctx.b.push(Op::LoadImm {
        dst: r(4),
        imm: region,
    });
    ctx.b.push(Op::LoadImm { dst: r(8), imm: 0 });
    // The walk phase carries over across outer iterations (seeded from the
    // persistent accumulator), so the chase keeps exploring new lines.
    ctx.b.push(Op::IntAlu {
        op: AluOp::Xor,
        dst: r(1),
        src1: r(15),
        src2: Operand::Imm(0x1234_5678_9abc_def1),
    });
    counted_loop_ctx(ctx, trips, |ctx| {
        // addr = base + ((value + i)*PHI & mask & ~7): serially dependent,
        // non-cyclic walk.
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(1),
            src1: r(1),
            src2: Operand::Imm(0x632b_e5ab),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(2),
            src1: r(8),
            src2: Operand::Reg(r(1)),
        });
        ctx.b.push(Op::IntMul {
            dst: r(2),
            src1: r(2),
            src2: Operand::Imm(0x9e37_79b9_7f4a_7c15),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::And,
            dst: r(2),
            src1: r(2),
            src2: Operand::Imm(mask & !7),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(2),
            src1: r(2),
            src2: Operand::Reg(r(4)),
        });
        ctx.b.push(Op::Load {
            dst: r(8),
            base: r(2),
            offset: 0,
            size: 8,
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(15),
            src1: r(15),
            src2: Operand::Reg(r(8)),
        });
    });
}

/// Data-dependent branches with `taken_bias_pct` percent taken probability.
pub fn branchy(ctx: &mut EmitCtx<'_>, trips: u64, taken_bias_pct: f64) {
    let region = ctx.region;
    let threshold = ((taken_bias_pct.clamp(0.0, 100.0) / 100.0) * u64::MAX as f64) as u64;
    ctx.b.push(Op::LoadImm {
        dst: r(4),
        imm: region,
    });
    // Wander through the data region across outer iterations so branch
    // outcomes stay data-dependent instead of becoming a memorizable
    // repeating pattern.
    ctx.b.push(Op::IntAlu {
        op: AluOp::Xor,
        dst: r(1),
        src1: r(15),
        src2: Operand::Imm(0x9e37_79b9),
    });
    counted_loop_ctx(ctx, trips, |ctx| {
        ctx.b.push(Op::IntAlu {
            op: AluOp::Shl,
            dst: r(2),
            src1: r(1),
            src2: Operand::Imm(3),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::And,
            dst: r(2),
            src1: r(2),
            src2: Operand::Imm(0x3_fff8),
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(2),
            src1: r(2),
            src2: Operand::Reg(r(4)),
        });
        ctx.b.push(Op::Load {
            dst: r(14),
            base: r(2),
            offset: 0,
            size: 8,
        });
        let br = ctx.b.push(Op::CondBranch {
            cond: Cond::Lt,
            src1: r(14),
            src2: Operand::Imm(threshold),
            target: 0,
        });
        // Not-taken side.
        ctx.b.push(Op::IntAlu {
            op: AluOp::Sub,
            dst: r(15),
            src1: r(15),
            src2: Operand::Reg(r(14)),
        });
        let jmp = ctx.b.push(Op::Jump { target: 0 });
        let taken_side = ctx.b.here();
        ctx.b.patch_target(br, taken_side);
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(15),
            src1: r(15),
            src2: Operand::Reg(r(14)),
        });
        let join = ctx.b.here();
        ctx.b.patch_target(jmp, join);
        // Write evolving data back so outcomes change across outer
        // iterations: without this the whole run is outer-loop periodic and
        // a long-history predictor memorizes every "random" branch.
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(14),
            src1: r(14),
            src2: Operand::Reg(r(15)),
        });
        ctx.b.push(Op::IntMul {
            dst: r(14),
            src1: r(14),
            src2: Operand::Imm(0x9e37_79b9_7f4a_7c15),
        });
        ctx.b.push(Op::Store {
            data: r(14),
            base: r(2),
            offset: 0,
            size: 8,
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(1),
            src1: r(1),
            src2: Operand::Imm(1),
        });
    });
}

/// Calls to a move-heavy leaf function (argument-passing glue): exercises
/// the RAS and produces ME candidates around calls.
pub fn call_leaf(ctx: &mut EmitCtx<'_>, trips: u64, moves_in_leaf: usize) {
    // Lay out the leaf first, jumped over by straight-line code.
    let skip = ctx.b.push(Op::Jump { target: 0 });
    let leaf = ctx.b.here();
    for k in 0..moves_in_leaf {
        let a = 8 + (k % 5);
        let b_ = 8 + ((k + 2) % 5);
        ctx.b.push(Op::MovInt {
            dst: r(a),
            src: r(b_),
            width: MoveWidth::W64,
        });
        ctx.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(15),
            src1: r(15),
            src2: Operand::Reg(r(a)),
        });
    }
    ctx.b.push(Op::Ret);
    let entry = ctx.b.here();
    ctx.b.patch_target(skip, entry);
    counted_loop_ctx(ctx, trips, |ctx| {
        // Argument setup: eliminable moves.
        ctx.b.push(Op::MovInt {
            dst: r(9),
            src: r(15),
            width: MoveWidth::W64,
        });
        ctx.b.push(Op::MovInt {
            dst: r(10),
            src: r(9),
            width: MoveWidth::W64,
        });
        ctx.b.push(Op::Call { target: leaf });
        work_uop(ctx);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::interp::Machine;
    use regshare_isa::op::UopKind;
    use regshare_isa::program::Program;
    use std::sync::Arc;

    fn run_motif(emit: impl FnOnce(&mut EmitCtx<'_>)) -> Vec<regshare_isa::op::DynUop> {
        let mut b = ProgramBuilder::new();
        let mut rng = Xorshift::new(99);
        {
            let mut ctx = EmitCtx {
                b: &mut b,
                rng: &mut rng,
                region: 0x1000_0000,
                fp_mix: 0.3,
            };
            emit(&mut ctx);
        }
        b.push(Op::Halt);
        let p: Arc<Program> = Arc::new(b.build());
        let mut m = Machine::new(p);
        let mut uops = Vec::new();
        let mut guard = 0;
        while !m.is_halted() && guard < 200_000 {
            uops.push(m.step());
            guard += 1;
        }
        assert!(m.is_halted(), "motif did not terminate");
        uops
    }

    #[test]
    fn move_glue_emits_eliminable_and_merge_moves() {
        let uops = run_motif(|ctx| move_glue(ctx, 8, 60.0, 20.0, true));
        let elim = uops.iter().filter(|u| u.kind.eliminable_move()).count();
        let merge = uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Move { width, .. } if width.is_merge()))
            .count();
        assert!(elim > 20, "too few eliminable moves: {elim}");
        assert!(merge > 0, "no merge moves emitted");
    }

    #[test]
    fn spill_reload_has_stable_store_load_distance() {
        let uops = run_motif(|ctx| spill_reload(ctx, 16, 1, 6, false));
        // Find (store addr → seq of data producer) and check loads' distance.
        let mut dist = Vec::new();
        let mut last_store: Option<(u64, u64)> = None; // (addr, producer seq)
        for u in &uops {
            if let Some(m) = u.mem {
                if m.is_store {
                    // producer is the most recent def of the data register
                    last_store = Some((m.addr, u.seq.0));
                } else if let Some((sa, ss)) = last_store {
                    if m.addr == sa {
                        dist.push(u.seq.0 - ss);
                    }
                }
            }
        }
        assert!(dist.len() >= 10);
        let first = dist[2];
        assert!(
            dist[2..].iter().all(|&d| d == first),
            "spill distance unstable: {dist:?}"
        );
    }

    #[test]
    fn variable_paths_make_distance_bimodal() {
        let uops = run_motif(|ctx| spill_reload(ctx, 64, 1, 4, true));
        let mut dists = std::collections::BTreeSet::new();
        let mut last_store: Option<(u64, u64)> = None;
        for u in &uops {
            if let Some(m) = u.mem {
                if m.is_store && m.addr == 0x1000_0000 {
                    last_store = Some((m.addr, u.seq.0));
                } else if !m.is_store {
                    if let Some((sa, ss)) = last_store {
                        if m.addr == sa {
                            dists.insert(u.seq.0 - ss);
                        }
                    }
                }
            }
        }
        assert!(
            dists.len() >= 2,
            "expected multiple distances, got {dists:?}"
        );
    }

    #[test]
    fn redundant_loads_reload_same_slot() {
        let uops = run_motif(|ctx| redundant_loads(ctx, 8, 3, 2));
        let loads = uops
            .iter()
            .filter(|u| u.is_load() && u.mem.unwrap().addr == 0x1000_0000)
            .count();
        assert!(loads >= 24, "expected ≥24 redundant loads, got {loads}");
    }

    #[test]
    fn pointer_alias_actually_aliases_sometimes() {
        let uops = run_motif(|ctx| pointer_alias(ctx, 64, 40.0, 64));
        // The slow store S immediately precedes the final load L of each
        // iteration; count how often they alias.
        let mut alias = 0;
        let mut non_alias = 0;
        let mut last_store: Option<u64> = None;
        for u in &uops {
            if let Some(m) = u.mem {
                if m.is_store {
                    last_store = Some(m.addr);
                } else if m.size == 8 {
                    if let Some(sa) = last_store {
                        if sa == m.addr {
                            alias += 1;
                        } else {
                            non_alias += 1;
                        }
                    }
                }
            }
        }
        assert!(alias > 5, "no aliasing happened: {alias}");
        assert!(non_alias > 5, "always aliasing: {non_alias}");
    }

    #[test]
    fn call_leaf_balances_calls_and_rets() {
        let uops = run_motif(|ctx| call_leaf(ctx, 10, 3));
        let calls = uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Branch(regshare_isa::op::BranchKind::Call)))
            .count();
        let rets = uops
            .iter()
            .filter(|u| {
                matches!(
                    u.kind,
                    UopKind::Branch(regshare_isa::op::BranchKind::Return)
                )
            })
            .count();
        assert_eq!(calls, 10);
        assert_eq!(rets, 10);
    }

    #[test]
    fn branchy_bias_is_respected() {
        let uops = run_motif(|ctx| branchy(ctx, 300, 80.0));
        let (mut taken, mut total) = (0usize, 0usize);
        for u in &uops {
            if let Some(b) = u.branch {
                if b.kind == regshare_isa::op::BranchKind::Conditional && u.sidx > 2 {
                    // Skip loop back-edges: they are Ne-conditioned; the
                    // biased branch uses Lt.
                    if matches!(uops.iter().find(|x| x.sidx == u.sidx).map(|_| ()), Some(())) {
                        total += 1;
                        if b.taken {
                            taken += 1;
                        }
                    }
                }
            }
        }
        // Loop branches are ~always taken; the data branch is 80%: overall
        // taken rate must sit well above 50%.
        assert!(total > 0);
        assert!(
            taken * 100 / total > 60,
            "bias not visible: {taken}/{total}"
        );
    }

    #[test]
    fn streaming_and_chase_terminate() {
        let s = run_motif(|ctx| streaming(ctx, 32, 256));
        assert!(s.iter().any(|u| u.is_store()));
        let c = run_motif(|ctx| pointer_chase(ctx, 32, 1024));
        assert!(c.iter().filter(|u| u.is_load()).count() >= 32);
    }

    #[test]
    fn unused_counted_loop_helper_compiles() {
        // Exercise the standalone counted_loop helper too.
        let mut b = ProgramBuilder::new();
        counted_loop(&mut b, 3, |b| {
            b.push(Op::Nop);
        });
        b.push(Op::Halt);
        let p = Arc::new(b.build());
        let mut m = Machine::new(p);
        let mut n = 0;
        while !m.is_halted() && n < 100 {
            m.step();
            n += 1;
        }
        assert!(m.is_halted());
    }
}

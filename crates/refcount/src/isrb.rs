//! The Inflight Shared Register Buffer (ISRB) — the paper's contribution
//! (§4.3).
//!
//! A small fully-associative buffer tracks only the registers that currently
//! have more than one mapping. Each entry holds the physical register
//! identifier (the CAM tag) and two **never-decremented** counters:
//!
//! - `referenced` — incremented each time a bypassing instruction references
//!   the register at rename (speculative);
//! - `committed` — incremented each time an instruction overwriting one of
//!   the register's mappings commits (architectural).
//!
//! The register is freed by the reclaim that finds `referenced ==
//! committed`. Because `committed` is architectural and only `referenced` is
//! speculative, a checkpoint needs to hold *only* the `referenced` fields
//! (n-bit × entries: 96 bits for a 32-entry / 3-bit ISRB), and restoring is
//! a copy plus one narrow compare per entry — single-cycle recovery.
//!
//! Two completions of the published scheme are implemented here and
//! documented in DESIGN.md:
//!
//! 1. A third architectural field `referenced_committed` (incremented when a
//!    *sharer* commits) supports commit-time flushes (memory traps, bypass
//!    validation failures), which restore `referenced` from it exactly as
//!    the Rename Map is restored from the Commit Rename Map. It needs no
//!    checkpoint storage.
//! 2. When an entry is freed, its slot is reset in **all** live checkpoints
//!    (the paper's gang-reset rule), preventing stale `referenced` values
//!    from leaking registers.

use crate::tracker::{
    CheckpointId, ReclaimDecision, ReclaimRequest, ShareRequest, SharingTracker, StorageReport,
    TrackerStats,
};
use regshare_types::{PhysReg, RegClass};
use std::collections::VecDeque;

/// ISRB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsrbConfig {
    /// Number of entries (0 = unlimited, the paper's "unlimited ISRB").
    pub entries: usize,
    /// Counter width in bits (the paper finds 3 sufficient; 32 ≈ ideal).
    pub counter_bits: u32,
    /// CAM ports available to rename per cycle (0 = unlimited). Bypasses
    /// beyond this are aborted, not stalled (§4.3.4).
    pub rename_ports: usize,
    /// CAM ports available to the reclaim hardware per cycle (0 =
    /// unlimited). Reclaims beyond this stall commit (§4.3.4).
    pub reclaim_ports: usize,
    /// Physical registers per class (for tag-width storage accounting).
    pub pregs_per_class: usize,
}

impl Default for IsrbConfig {
    fn default() -> IsrbConfig {
        IsrbConfig {
            entries: 32,
            counter_bits: 3,
            rename_ports: 0,
            reclaim_ports: 0,
            pregs_per_class: 256,
        }
    }
}

impl IsrbConfig {
    /// The paper's headline design point: 32 entries × two 3-bit counters
    /// (480 bits of state + 96 bits per checkpoint).
    pub fn hpca16() -> IsrbConfig {
        IsrbConfig::default()
    }

    /// An unlimited ISRB with effectively unbounded counters (the "ideal"
    /// configuration of the figures).
    pub fn unlimited() -> IsrbConfig {
        IsrbConfig {
            entries: 0,
            counter_bits: 31,
            ..IsrbConfig::default()
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    class_fp: bool,
    preg: u16,
    referenced: u32,
    committed: u32,
    /// Architectural image of `referenced` (sharers that have committed).
    referenced_committed: u32,
}

regshare_types::impl_snap!(Entry {
    valid,
    class_fp,
    preg,
    referenced,
    committed,
    referenced_committed
});

#[derive(Debug, Clone)]
struct Checkpoint {
    id: CheckpointId,
    referenced: Vec<u32>,
}

/// Retired checkpoint buffers kept for reuse: one checkpoint is taken per
/// predicted branch, so recycling the `referenced` vectors keeps the
/// branch-rename path allocation-free in steady state.
const CKPT_POOL_CAP: usize = 64;

/// The Inflight Shared Register Buffer. See the module docs for semantics
/// and [`IsrbConfig`] for sizing.
#[derive(Debug)]
pub struct Isrb {
    cfg: IsrbConfig,
    entries: Vec<Entry>,
    /// Free entry slots (index stack).
    free_slots: Vec<usize>,
    /// Per-class direct map preg → slot + 1 (0 = not present). Models the
    /// CAM's single-cycle match in O(1) instead of scanning `entries`; the
    /// scan sat on the reclaim path of every committed destination µ-op.
    index: [Vec<u32>; 2],
    checkpoints: VecDeque<Checkpoint>,
    /// Recycled checkpoint buffers (see [`CKPT_POOL_CAP`]).
    ckpt_pool: Vec<Vec<u32>>,
    next_ckpt: CheckpointId,
    max_counter: u32,
    stats: TrackerStats,
}

impl Isrb {
    /// Builds an ISRB.
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is 0 or > 31.
    pub fn new(cfg: IsrbConfig) -> Isrb {
        assert!(cfg.counter_bits > 0 && cfg.counter_bits <= 31);
        let n = if cfg.entries == 0 { 0 } else { cfg.entries };
        Isrb {
            entries: vec![Entry::default(); n],
            free_slots: (0..n).rev().collect(),
            index: [vec![0; cfg.pregs_per_class], vec![0; cfg.pregs_per_class]],
            checkpoints: VecDeque::new(),
            ckpt_pool: Vec::new(),
            next_ckpt: 0,
            max_counter: (1u32 << cfg.counter_bits) - 1,
            cfg,
            stats: TrackerStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &IsrbConfig {
        &self.cfg
    }

    #[inline]
    fn find(&self, class: RegClass, preg: PhysReg) -> Option<usize> {
        let slot = *self.index[class.index()].get(preg.index())?;
        (slot != 0).then(|| slot as usize - 1)
    }

    /// Points the direct map at `slot` for the entry currently stored there.
    fn index_insert(&mut self, slot: usize) {
        let e = &self.entries[slot];
        let lane = &mut self.index[usize::from(e.class_fp)];
        let p = e.preg as usize;
        if p >= lane.len() {
            lane.resize(p + 1, 0);
        }
        lane[p] = slot as u32 + 1;
    }

    /// Rebuilds the direct map from `entries` (snapshot restore).
    fn reindex(&mut self) {
        for lane in &mut self.index {
            lane.clear();
            lane.resize(self.cfg.pregs_per_class, 0);
        }
        for slot in 0..self.entries.len() {
            if self.entries[slot].valid {
                self.index_insert(slot);
            }
        }
    }

    fn alloc_slot(&mut self) -> Option<usize> {
        if let Some(s) = self.free_slots.pop() {
            return Some(s);
        }
        if self.cfg.entries == 0 {
            self.entries.push(Entry::default());
            // Grow existing checkpoints to cover the new slot (conceptually
            // the unlimited ISRB always had this slot with referenced = 0).
            for c in &mut self.checkpoints {
                c.referenced.push(0);
            }
            Some(self.entries.len() - 1)
        } else {
            None
        }
    }

    /// Frees entry `slot` and gang-resets it in every live checkpoint.
    fn free_entry(&mut self, slot: usize) {
        let e = &self.entries[slot];
        if e.valid {
            self.index[usize::from(e.class_fp)][e.preg as usize] = 0;
        }
        self.entries[slot] = Entry::default();
        self.free_slots.push(slot);
        self.stats.entries_freed += 1;
        for c in &mut self.checkpoints {
            if slot < c.referenced.len() {
                c.referenced[slot] = 0;
            }
        }
    }

    fn occupancy(&self) -> usize {
        // `free_slots` holds exactly the invalid slots (in unlimited mode
        // grown slots are valid immediately), so no scan is needed.
        self.entries.len() - self.free_slots.len()
    }

    fn entry_preg(e: &Entry) -> (RegClass, PhysReg) {
        (
            if e.class_fp {
                RegClass::Fp
            } else {
                RegClass::Int
            },
            PhysReg::new(e.preg as usize),
        )
    }

    /// Returns a retired checkpoint buffer to the pool.
    fn recycle(&mut self, referenced: Vec<u32>) {
        if self.ckpt_pool.len() < CKPT_POOL_CAP {
            self.ckpt_pool.push(referenced);
        }
    }

    /// Applies the paper's per-entry restore rule given a checkpointed
    /// `referenced` value; returns the freed register if the entry died.
    fn restore_entry(&mut self, slot: usize, ref_ck: u32) -> Option<(RegClass, PhysReg)> {
        let e = &mut self.entries[slot];
        if !e.valid {
            // "If the ISRB entry is already free, nothing happens."
            return None;
        }
        let committed = e.committed;
        e.referenced = ref_ck;
        if committed > ref_ck {
            // The last overwrite should have freed the register.
            let freed = Self::entry_preg(e);
            self.free_entry(slot);
            Some(freed)
        } else if committed == 0 && ref_ck == 0 {
            // Entry allocated later than the restore point: the register is
            // covered by the Free List pointer restore (or by an older
            // committing instruction); only the entry is freed.
            self.free_entry(slot);
            None
        } else {
            None
        }
    }
}

impl SharingTracker for Isrb {
    fn name(&self) -> &'static str {
        "isrb"
    }

    fn try_share(&mut self, req: &ShareRequest) -> bool {
        if let Some(slot) = self.find(req.class, req.preg) {
            let e = &mut self.entries[slot];
            if e.referenced >= self.max_counter {
                self.stats.shares_rejected_saturated += 1;
                return false;
            }
            e.referenced += 1;
            self.stats.shares_accepted += 1;
            return true;
        }
        match self.alloc_slot() {
            Some(slot) => {
                self.entries[slot] = Entry {
                    valid: true,
                    class_fp: req.class == RegClass::Fp,
                    preg: req.preg.index() as u16,
                    referenced: 1,
                    committed: 0,
                    referenced_committed: 0,
                };
                self.index_insert(slot);
                self.stats.shares_accepted += 1;
                self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupancy());
                true
            }
            None => {
                self.stats.shares_rejected_full += 1;
                false
            }
        }
    }

    fn on_sharer_commit(&mut self, req: &ShareRequest) {
        if let Some(slot) = self.find(req.class, req.preg) {
            let e = &mut self.entries[slot];
            if e.referenced_committed < self.max_counter {
                e.referenced_committed += 1;
            }
        }
    }

    fn on_reclaim(&mut self, req: &ReclaimRequest) -> ReclaimDecision {
        self.stats.reclaims += 1;
        match self.find(req.class, req.preg) {
            None => ReclaimDecision::Free,
            Some(slot) => {
                self.stats.reclaim_cam_hits += 1;
                let e = &mut self.entries[slot];
                debug_assert!(
                    e.committed <= e.referenced,
                    "ISRB invariant violated: committed {} > referenced {}",
                    e.committed,
                    e.referenced
                );
                if e.referenced == e.committed {
                    self.free_entry(slot);
                    ReclaimDecision::Free
                } else {
                    e.committed += 1;
                    ReclaimDecision::Keep
                }
            }
        }
    }

    fn checkpoint(&mut self) -> CheckpointId {
        let id = self.next_ckpt;
        self.next_ckpt += 1;
        let mut referenced = self.ckpt_pool.pop().unwrap_or_default();
        referenced.clear();
        referenced.extend(
            self.entries
                .iter()
                .map(|e| if e.valid { e.referenced } else { 0 }),
        );
        self.checkpoints.push_back(Checkpoint { id, referenced });
        self.stats.checkpoints_taken += 1;
        id
    }

    fn restore(&mut self, id: CheckpointId, freed: &mut Vec<(RegClass, PhysReg)>) {
        self.stats.restores += 1;
        // Drop checkpoints younger than `id`, then take `id` itself.
        while let Some(back) = self.checkpoints.back() {
            if back.id > id {
                let dead = self.checkpoints.pop_back().expect("just peeked");
                self.recycle(dead.referenced);
            } else {
                break;
            }
        }
        let ck = match self.checkpoints.pop_back() {
            Some(ck) if ck.id == id => ck,
            other => panic!(
                "restore to unknown checkpoint {id} (found {:?})",
                other.map(|c| c.id)
            ),
        };
        for slot in 0..self.entries.len() {
            let ref_ck = ck.referenced.get(slot).copied().unwrap_or(0);
            if let Some(p) = self.restore_entry(slot, ref_ck) {
                freed.push(p);
            }
        }
        self.recycle(ck.referenced);
    }

    fn release_checkpoint(&mut self, id: CheckpointId) {
        if let Some(pos) = crate::tracker::ckpt_pos(&self.checkpoints, id, |c| c.id) {
            debug_assert_eq!(pos, 0, "checkpoints must be released oldest-first");
            if let Some(ck) = self.checkpoints.remove(pos) {
                self.recycle(ck.referenced);
            }
        }
    }

    fn restore_to_committed(&mut self, freed: &mut Vec<(RegClass, PhysReg)>) {
        self.stats.restores += 1;
        while let Some(ck) = self.checkpoints.pop_back() {
            self.recycle(ck.referenced);
        }
        for slot in 0..self.entries.len() {
            let ref_arch = if self.entries[slot].valid {
                self.entries[slot].referenced_committed
            } else {
                continue;
            };
            if let Some(p) = self.restore_entry(slot, ref_arch) {
                freed.push(p);
            }
        }
    }

    fn storage(&self) -> StorageReport {
        let entries = if self.cfg.entries == 0 {
            self.entries.len().max(1)
        } else {
            self.cfg.entries
        };
        let tag_bits = (usize::BITS - (self.cfg.pregs_per_class - 1).leading_zeros()) as usize + 1; // +1 class bit
        let per_entry = tag_bits + 1 /*valid*/ + 2 * self.cfg.counter_bits as usize;
        StorageReport {
            main_bits: entries * per_entry,
            per_checkpoint_bits: entries * self.cfg.counter_bits as usize,
        }
    }

    fn is_shared(&self, class: RegClass, preg: PhysReg) -> bool {
        self.find(class, preg).is_some()
    }

    fn shared_count(&self) -> usize {
        self.occupancy()
    }

    fn stats(&self) -> TrackerStats {
        self.stats
    }

    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.entries.encode(w);
        self.free_slots.encode(w);
        w.put_len(self.checkpoints.len());
        for c in &self.checkpoints {
            w.put_u64(c.id);
            c.referenced.encode(w);
        }
        w.put_u64(self.next_ckpt);
        self.stats.encode(w);
    }

    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let entries: Vec<Entry> = Snap::decode(r)?;
        if self.cfg.entries != 0 && entries.len() != self.entries.len() {
            return Err(r.corrupt("Isrb entry count"));
        }
        let free_slots: Vec<usize> = Snap::decode(r)?;
        if free_slots.iter().any(|&s| s >= entries.len()) {
            return Err(r.corrupt("Isrb free slot out of range"));
        }
        let n = r.get_len()?;
        let mut checkpoints = VecDeque::with_capacity(n);
        for _ in 0..n {
            let id = r.get_u64()?;
            let referenced: Vec<u32> = Snap::decode(r)?;
            if referenced.len() != entries.len() {
                return Err(r.corrupt("Isrb checkpoint size"));
            }
            checkpoints.push_back(Checkpoint { id, referenced });
        }
        self.entries = entries;
        self.free_slots = free_slots;
        self.reindex();
        self.checkpoints = checkpoints;
        self.ckpt_pool.clear();
        self.next_ckpt = r.get_u64()?;
        self.stats = Snap::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::ShareKind;
    use regshare_types::ArchReg;

    fn share(preg: usize) -> ShareRequest {
        ShareRequest {
            class: RegClass::Int,
            preg: PhysReg::new(preg),
            kind: ShareKind::Bypass {
                arch_dst: ArchReg::int(1),
            },
        }
    }

    fn reclaim(preg: usize) -> ReclaimRequest {
        ReclaimRequest {
            class: RegClass::Int,
            preg: PhysReg::new(preg),
            arch: ArchReg::int(0),
            renews: false,
        }
    }

    fn isrb(entries: usize) -> Isrb {
        Isrb::new(IsrbConfig {
            entries,
            counter_bits: 3,
            ..IsrbConfig::default()
        })
    }

    #[test]
    fn single_share_needs_two_reclaims() {
        let mut t = isrb(8);
        assert!(t.try_share(&share(5)));
        assert!(t.is_shared(RegClass::Int, PhysReg::new(5)));
        assert_eq!(t.on_reclaim(&reclaim(5)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(5)), ReclaimDecision::Free);
        assert!(!t.is_shared(RegClass::Int, PhysReg::new(5)));
        // Subsequent reclaims of the (re-allocated) register free normally.
        assert_eq!(t.on_reclaim(&reclaim(5)), ReclaimDecision::Free);
    }

    #[test]
    fn k_sharers_need_k_plus_one_reclaims() {
        let mut t = isrb(8);
        for _ in 0..3 {
            assert!(t.try_share(&share(7)));
        }
        for _ in 0..3 {
            assert_eq!(t.on_reclaim(&reclaim(7)), ReclaimDecision::Keep);
        }
        assert_eq!(t.on_reclaim(&reclaim(7)), ReclaimDecision::Free);
    }

    #[test]
    fn untracked_register_frees_normally() {
        let mut t = isrb(8);
        assert_eq!(t.on_reclaim(&reclaim(9)), ReclaimDecision::Free);
        assert_eq!(t.stats().reclaim_cam_hits, 0);
    }

    #[test]
    fn full_buffer_rejects_share() {
        let mut t = isrb(2);
        assert!(t.try_share(&share(1)));
        assert!(t.try_share(&share(2)));
        assert!(!t.try_share(&share(3)));
        assert_eq!(t.stats().shares_rejected_full, 1);
        // Freeing one entry re-enables sharing.
        t.on_reclaim(&reclaim(1));
        t.on_reclaim(&reclaim(1));
        assert!(t.try_share(&share(3)));
    }

    #[test]
    fn saturated_counter_rejects_share() {
        let mut t = Isrb::new(IsrbConfig {
            entries: 4,
            counter_bits: 2,
            ..IsrbConfig::default()
        });
        assert!(t.try_share(&share(1)));
        assert!(t.try_share(&share(1)));
        assert!(t.try_share(&share(1)));
        assert!(!t.try_share(&share(1))); // referenced == 3 == max for 2 bits
        assert_eq!(t.stats().shares_rejected_saturated, 1);
    }

    #[test]
    fn classes_do_not_collide() {
        let mut t = isrb(8);
        assert!(t.try_share(&share(3)));
        let fp = ShareRequest {
            class: RegClass::Fp,
            preg: PhysReg::new(3),
            kind: ShareKind::Bypass {
                arch_dst: ArchReg::fp(0),
            },
        };
        assert!(t.try_share(&fp));
        assert_eq!(t.shared_count(), 2);
        assert!(t.is_shared(RegClass::Fp, PhysReg::new(3)));
    }

    /// The paper's Figure 3 worked example, end to end.
    #[test]
    fn figure3_worked_example() {
        let mut t = isrb(8);
        let p1 = 1;
        // load4 hits p1 in the ROB: referenced 0 → 1.
        assert!(t.try_share(&share(p1)));
        // jmp8 checkpoints the ISRB.
        let ck = t.checkpoint();
        // load10 (wrong path) also hits p1: referenced 1 → 2.
        assert!(t.try_share(&share(p1)));
        // shl3 and sub7 commit, overwriting two mappings of p1:
        // committed 0 → 1 → 2 (== referenced, so next reclaim would free).
        assert_eq!(t.on_reclaim(&reclaim(p1)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(p1)), ReclaimDecision::Keep);
        // jmp8 was mispredicted: restore. Checkpointed referenced is 1, but
        // committed reached 2 — the register should have been freed by sub7:
        // recovery frees it.
        let mut freed = Vec::new();
        t.restore(ck, &mut freed);
        assert_eq!(freed, vec![(RegClass::Int, PhysReg::new(p1))]);
        assert!(!t.is_shared(RegClass::Int, PhysReg::new(p1)));
    }

    #[test]
    fn restore_frees_wrong_path_only_entries() {
        let mut t = isrb(8);
        let ck = t.checkpoint();
        // Entry allocated entirely on the wrong path.
        assert!(t.try_share(&share(4)));
        let mut freed = Vec::new();
        t.restore(ck, &mut freed);
        // Entry freed but register NOT pushed (covered by FL restore).
        assert!(freed.is_empty());
        assert_eq!(t.shared_count(), 0);
    }

    #[test]
    fn restore_keeps_still_live_entries() {
        let mut t = isrb(8);
        assert!(t.try_share(&share(2))); // correct-path share
        let ck = t.checkpoint();
        assert!(t.try_share(&share(2))); // wrong-path share: 2
        let mut freed = Vec::new();
        t.restore(ck, &mut freed);
        assert!(freed.is_empty());
        assert!(t.is_shared(RegClass::Int, PhysReg::new(2)));
        // Still needs 2 reclaims (1 sharer).
        assert_eq!(t.on_reclaim(&reclaim(2)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(2)), ReclaimDecision::Free);
    }

    #[test]
    fn nested_checkpoints_restore_to_older() {
        let mut t = isrb(8);
        assert!(t.try_share(&share(2)));
        let ck1 = t.checkpoint();
        assert!(t.try_share(&share(2)));
        let _ck2 = t.checkpoint();
        assert!(t.try_share(&share(2)));
        // Restore directly to ck1 discards ck2 implicitly.
        let mut freed = Vec::new();
        t.restore(ck1, &mut freed);
        assert_eq!(t.on_reclaim(&reclaim(2)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(2)), ReclaimDecision::Free);
    }

    #[test]
    fn gang_reset_prevents_stale_checkpoint_leak() {
        // Entry freed on the correct path while a younger checkpoint still
        // tracks it; slot is then reallocated on the wrong path. Restoring
        // must not resurrect the stale referenced value (§4.3.2).
        let mut t = isrb(1); // single slot forces reuse
        assert!(t.try_share(&share(10)));
        let ck = t.checkpoint(); // snapshot: slot0.referenced = 1

        // Correct path frees preg 10 (2 reclaims).
        assert_eq!(t.on_reclaim(&reclaim(10)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(10)), ReclaimDecision::Free);
        // Wrong path reallocates the slot for preg 11.
        assert!(t.try_share(&share(11)));
        // Restore: slot's checkpointed referenced must read 0 (gang reset),
        // so the wrong-path entry is freed, not given referenced = 1.
        let mut freed = Vec::new();
        t.restore(ck, &mut freed);
        assert!(freed.is_empty());
        assert_eq!(t.shared_count(), 0, "stale checkpoint resurrected an entry");
    }

    #[test]
    fn release_checkpoint_drops_oldest() {
        let mut t = isrb(4);
        let c1 = t.checkpoint();
        let _c2 = t.checkpoint();
        t.release_checkpoint(c1);
        // Restoring to c2 still works.
        let mut freed = Vec::new();
        t.restore(_c2, &mut freed);
    }

    #[test]
    fn commit_flush_restores_architectural_references() {
        let mut t = isrb(8);
        // Correct-path sharer that commits.
        assert!(t.try_share(&share(3)));
        t.on_sharer_commit(&share(3));
        // In-flight (uncommitted) extra sharer.
        assert!(t.try_share(&share(3)));
        let mut freed = Vec::new();
        t.restore_to_committed(&mut freed);
        assert!(freed.is_empty());
        // referenced restored to 1 (the committed sharer): 2 reclaims free.
        assert_eq!(t.on_reclaim(&reclaim(3)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(3)), ReclaimDecision::Free);
    }

    #[test]
    fn commit_flush_drops_purely_speculative_entries() {
        let mut t = isrb(8);
        assert!(t.try_share(&share(6))); // never commits
        let mut freed = Vec::new();
        t.restore_to_committed(&mut freed);
        assert_eq!(t.shared_count(), 0);
        assert!(freed.is_empty());
    }

    #[test]
    fn unlimited_isrb_grows() {
        let mut t = Isrb::new(IsrbConfig::unlimited());
        for i in 0..100 {
            assert!(t.try_share(&share(i)));
        }
        assert_eq!(t.shared_count(), 100);
        assert_eq!(t.stats().shares_rejected_full, 0);
    }

    #[test]
    fn unlimited_isrb_checkpoints_cover_growth() {
        let mut t = Isrb::new(IsrbConfig::unlimited());
        assert!(t.try_share(&share(1)));
        let ck = t.checkpoint();
        // New entries allocated after the checkpoint (growing the buffer).
        for i in 2..20 {
            assert!(t.try_share(&share(i)));
        }
        let mut freed = Vec::new();
        t.restore(ck, &mut freed);
        assert_eq!(
            t.shared_count(),
            1,
            "post-checkpoint entries must die on restore"
        );
    }

    #[test]
    fn paper_storage_numbers() {
        // 32 entries, 3-bit counters, 256 pregs/class: 480 bits + 96/ckpt.
        let t = Isrb::new(IsrbConfig::hpca16());
        let s = t.storage();
        assert_eq!(s.main_bits, 32 * (8 + 1 + 1 + 6));
        assert_eq!(s.per_checkpoint_bits, 96);
        // The paper quotes 480 total bits of CPU storage for this point.
        assert_eq!(s.main_bits, 512); // 480 + 32 valid bits in our accounting
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut t = isrb(8);
        for i in 0..5 {
            t.try_share(&share(i));
        }
        assert_eq!(t.stats().peak_occupancy, 5);
    }
}

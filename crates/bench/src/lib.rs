//! Experiment harness: workload × configuration sweeps reproducing every
//! table and figure of the paper's evaluation.
//!
//! Each bench target (`cargo bench --bench fig…`) runs the relevant sweep
//! and prints the same rows/series the paper reports, plus a CSV block for
//! plotting. Window sizes default to quick-but-stable values and can be
//! scaled with the `REGSHARE_WARMUP` / `REGSHARE_MEASURE` environment
//! variables (µ-ops per run).

#![deny(missing_docs)]

pub mod harness;
pub mod table;

pub use harness::{measure, measure_with, Measurement, RunWindow};
pub use table::Table;

//! Static programs: validated sequences of [`Op`]s with synthetic PCs.

use crate::op::{Op, Operand};
use regshare_types::{Addr, ArchReg, RegClass};
use std::fmt;

/// Base address of the synthetic code segment.
pub const PC_BASE: Addr = 0x0040_0000;
/// Bytes per (fixed-size) instruction; PCs advance by this amount.
pub const INST_BYTES: Addr = 4;

/// Error produced when validating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// A branch/jump/call target is out of range.
    TargetOutOfRange {
        /// Index of the offending instruction.
        at: u32,
        /// The invalid target.
        target: u32,
    },
    /// A register operand has the wrong class for its role.
    WrongRegClass {
        /// Index of the offending instruction.
        at: u32,
        /// Description of the role, e.g. `"load base"`.
        role: &'static str,
    },
    /// A load/store size is not 1, 2, 4 or 8.
    BadAccessSize {
        /// Index of the offending instruction.
        at: u32,
        /// The invalid size.
        size: u8,
    },
    /// The program is empty.
    Empty,
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::TargetOutOfRange { at, target } => {
                write!(
                    f,
                    "instruction {at}: control-flow target {target} out of range"
                )
            }
            ValidateProgramError::WrongRegClass { at, role } => {
                write!(f, "instruction {at}: wrong register class for {role}")
            }
            ValidateProgramError::BadAccessSize { at, size } => {
                write!(f, "instruction {at}: invalid memory access size {size}")
            }
            ValidateProgramError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for ValidateProgramError {}

/// An immutable, validated program.
///
/// # Examples
///
/// ```
/// use regshare_isa::program::ProgramBuilder;
/// use regshare_isa::op::Op;
/// use regshare_types::ArchReg;
///
/// let mut b = ProgramBuilder::new();
/// b.push(Op::LoadImm { dst: ArchReg::int(0), imm: 1 });
/// b.push(Op::Halt);
/// let p = b.build();
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.pc_of(1), p.pc_of(0) + 4);
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<Op>,
}

impl Program {
    /// Validates and wraps a raw instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateProgramError`] describing the first problem found.
    pub fn validated(insts: Vec<Op>) -> Result<Program, ValidateProgramError> {
        if insts.is_empty() {
            return Err(ValidateProgramError::Empty);
        }
        let n = insts.len() as u32;
        let check_target = |at: u32, target: u32| {
            if target >= n {
                Err(ValidateProgramError::TargetOutOfRange { at, target })
            } else {
                Ok(())
            }
        };
        let check_int = |at: u32, r: ArchReg, role: &'static str| {
            if r.class() != RegClass::Int {
                Err(ValidateProgramError::WrongRegClass { at, role })
            } else {
                Ok(())
            }
        };
        let check_fp = |at: u32, r: ArchReg, role: &'static str| {
            if r.class() != RegClass::Fp {
                Err(ValidateProgramError::WrongRegClass { at, role })
            } else {
                Ok(())
            }
        };
        let check_size = |at: u32, size: u8| {
            if matches!(size, 1 | 2 | 4 | 8) {
                Ok(())
            } else {
                Err(ValidateProgramError::BadAccessSize { at, size })
            }
        };
        for (i, op) in insts.iter().enumerate() {
            let at = i as u32;
            match *op {
                Op::IntAlu {
                    dst, src1, src2, ..
                }
                | Op::IntMul { dst, src1, src2 }
                | Op::IntDiv { dst, src1, src2 } => {
                    check_int(at, dst, "int dst")?;
                    check_int(at, src1, "int src1")?;
                    if let Operand::Reg(r) = src2 {
                        check_int(at, r, "int src2")?;
                    }
                }
                Op::FpAdd { dst, src1, src2 }
                | Op::FpMul { dst, src1, src2 }
                | Op::FpDiv { dst, src1, src2 } => {
                    check_fp(at, dst, "fp dst")?;
                    check_fp(at, src1, "fp src1")?;
                    check_fp(at, src2, "fp src2")?;
                }
                Op::MovInt { dst, src, .. } => {
                    check_int(at, dst, "move dst")?;
                    check_int(at, src, "move src")?;
                }
                Op::MovFp { dst, src } => {
                    check_fp(at, dst, "fp move dst")?;
                    check_fp(at, src, "fp move src")?;
                }
                Op::LoadImm { .. } => {}
                Op::Load { base, size, .. } => {
                    check_int(at, base, "load base")?;
                    check_size(at, size)?;
                }
                Op::Store { base, size, .. } => {
                    check_int(at, base, "store base")?;
                    check_size(at, size)?;
                }
                Op::CondBranch {
                    src1, src2, target, ..
                } => {
                    check_int(at, src1, "branch src1")?;
                    if let Operand::Reg(r) = src2 {
                        check_int(at, r, "branch src2")?;
                    }
                    check_target(at, target)?;
                }
                Op::Jump { target } | Op::Call { target } => check_target(at, target)?,
                Op::Ret | Op::Nop | Op::Halt => {}
            }
        }
        Ok(Program { insts })
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty (never true for validated programs).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at static index `sidx`.
    ///
    /// # Panics
    ///
    /// Panics if `sidx` is out of range.
    #[inline]
    pub fn op(&self, sidx: u32) -> &Op {
        &self.insts[sidx as usize]
    }

    /// Program counter of static index `sidx`.
    #[inline]
    pub fn pc_of(&self, sidx: u32) -> Addr {
        PC_BASE + sidx as Addr * INST_BYTES
    }

    /// Inverse of [`Program::pc_of`]; `None` if `pc` is not a valid PC.
    pub fn sidx_of(&self, pc: Addr) -> Option<u32> {
        if pc < PC_BASE || !(pc - PC_BASE).is_multiple_of(INST_BYTES) {
            return None;
        }
        let sidx = (pc - PC_BASE) / INST_BYTES;
        if (sidx as usize) < self.insts.len() {
            Some(sidx as u32)
        } else {
            None
        }
    }

    /// Iterates over the static instructions.
    pub fn iter(&self) -> impl Iterator<Item = &Op> {
        self.insts.iter()
    }

    /// Deterministic digest of the instruction sequence, used to pin
    /// snapshots to the program they were captured from.
    pub fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = regshare_types::hasher::FastHasher::default();
        format!("{:?}", self.insts).hash(&mut h);
        h.finish()
    }
}

/// Incremental builder for [`Program`]s with label support.
///
/// # Examples
///
/// ```
/// use regshare_isa::program::ProgramBuilder;
/// use regshare_isa::op::{Op, Operand, AluOp, Cond};
/// use regshare_types::ArchReg;
///
/// let mut b = ProgramBuilder::new();
/// let r = ArchReg::int(0);
/// b.push(Op::LoadImm { dst: r, imm: 10 });
/// let top = b.here();
/// b.push(Op::IntAlu { op: AluOp::Sub, dst: r, src1: r, src2: Operand::Imm(1) });
/// b.push(Op::CondBranch { cond: Cond::Ne, src1: r, src2: Operand::Imm(0), target: top });
/// b.push(Op::Halt);
/// let p = b.build();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    insts: Vec<Op>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Appends an instruction, returning its static index.
    pub fn push(&mut self, op: Op) -> u32 {
        let idx = self.insts.len() as u32;
        self.insts.push(op);
        idx
    }

    /// The static index the *next* pushed instruction will get — use as a
    /// forward/backward branch label.
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Number of instructions pushed so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Patches the target of a previously pushed branch/jump/call.
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of range or the instruction has no target.
    pub fn patch_target(&mut self, at: u32, new_target: u32) {
        match &mut self.insts[at as usize] {
            Op::CondBranch { target, .. } | Op::Jump { target } | Op::Call { target } => {
                *target = new_target;
            }
            other => panic!("instruction {at} ({other:?}) has no target to patch"),
        }
    }

    /// Validates and finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if validation fails; use [`ProgramBuilder::try_build`] to
    /// handle errors.
    pub fn build(self) -> Program {
        self.try_build().expect("invalid program")
    }

    /// Validates and finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateProgramError`] describing the first problem found.
    pub fn try_build(self) -> Result<Program, ValidateProgramError> {
        Program::validated(self.insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, Cond};

    #[test]
    fn empty_program_rejected() {
        let err = Program::validated(vec![]).unwrap_err();
        assert_eq!(err, ValidateProgramError::Empty);
    }

    #[test]
    fn target_out_of_range_rejected() {
        let err = Program::validated(vec![Op::Jump { target: 5 }]).unwrap_err();
        assert_eq!(
            err,
            ValidateProgramError::TargetOutOfRange { at: 0, target: 5 }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn wrong_class_rejected() {
        let err = Program::validated(vec![Op::IntAlu {
            op: AluOp::Add,
            dst: ArchReg::fp(0),
            src1: ArchReg::int(0),
            src2: Operand::Imm(0),
        }])
        .unwrap_err();
        assert!(matches!(
            err,
            ValidateProgramError::WrongRegClass { at: 0, .. }
        ));
    }

    #[test]
    fn bad_size_rejected() {
        let err = Program::validated(vec![Op::Load {
            dst: ArchReg::int(0),
            base: ArchReg::int(1),
            offset: 0,
            size: 3,
        }])
        .unwrap_err();
        assert_eq!(err, ValidateProgramError::BadAccessSize { at: 0, size: 3 });
    }

    #[test]
    fn pc_round_trip() {
        let mut b = ProgramBuilder::new();
        for _ in 0..10 {
            b.push(Op::Nop);
        }
        let p = b.build();
        for i in 0..10u32 {
            assert_eq!(p.sidx_of(p.pc_of(i)), Some(i));
        }
        assert_eq!(p.sidx_of(p.pc_of(0) + 1), None);
        assert_eq!(p.sidx_of(p.pc_of(9) + INST_BYTES), None);
        assert_eq!(p.sidx_of(0), None);
    }

    #[test]
    fn patch_target_works() {
        let mut b = ProgramBuilder::new();
        let j = b.push(Op::Jump { target: 0 });
        b.push(Op::Nop);
        b.push(Op::CondBranch {
            cond: Cond::Eq,
            src1: ArchReg::int(0),
            src2: Operand::Imm(0),
            target: 0,
        });
        b.patch_target(j, 2);
        let p = b.build();
        assert!(matches!(p.op(0), Op::Jump { target: 2 }));
    }

    #[test]
    #[should_panic]
    fn patch_non_branch_panics() {
        let mut b = ProgramBuilder::new();
        b.push(Op::Nop);
        b.patch_target(0, 0);
    }
}

//! Minimal aligned-table printer for paper-style experiment output.

/// A simple left-aligned text table with a CSV echo.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    footers: Vec<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            footers: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a free-form summary line (geomeans, paper comparisons…)
    /// rendered after the CSV block, so sweep summaries travel with their
    /// table through one render call.
    pub fn footer<S: Into<String>>(&mut self, line: S) {
        self.footers.push(line.into());
    }

    /// Whether the table has no data rows yet (e.g. a conditional section
    /// none of the workloads qualified for).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table plus a `csv:`-prefixed machine block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push('\n');
        out.push_str("csv:");
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str("csv:");
            out.push_str(&row.join(","));
            out.push('\n');
        }
        if !self.footers.is_empty() {
            out.push('\n');
            for line in &self.footers {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_and_csv() {
        let mut t = Table::new(vec!["bench", "ipc"]);
        t.row(vec!["crafty", "1.23"]);
        t.row(vec!["x", "10.0"]);
        let s = t.render();
        assert!(s.contains("crafty  1.23"));
        assert!(s.contains("csv:bench,ipc"));
        assert!(s.contains("csv:x,10.0"));
    }

    #[test]
    fn footers_render_after_csv_block() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1"]);
        t.footer("geomean +1.00%");
        let s = t.render();
        let csv_at = s.find("csv:a").unwrap();
        let foot_at = s.find("geomean +1.00%").unwrap();
        assert!(foot_at > csv_at);
        assert!(!t.is_empty());
        assert!(Table::new(vec!["a"]).is_empty());
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}

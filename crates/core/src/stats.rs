//! Simulation statistics: everything the paper's figures report.

use regshare_refcount::TrackerStats;
use regshare_types::stats::RunningMean;

/// Counters collected over a measured simulation window.
///
/// Plain counters all the way down (`Copy`): snapshotting stats — as
/// [`Simulator::run`](crate::Simulator::run) does at every call — is a
/// flat memcpy, never a heap allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Cycles elapsed.
    pub cycles: u64,
    /// µ-ops committed (architectural instructions; includes eliminated
    /// moves, which retire without executing).
    pub committed: u64,
    /// µ-ops renamed (correct and wrong path), the denominator of
    /// Figure 5(b).
    pub renamed: u64,

    // --- branches ---
    /// Conditional branches committed.
    pub branches: u64,
    /// Branch mispredictions recovered (resolution-time squashes).
    pub branch_mispredicts: u64,
    /// µ-ops squashed by branch recoveries.
    pub squashed_uops: u64,
    /// Extra rename-stall cycles charged by the tracker's recovery model
    /// (zero for checkpointed schemes, the walk cost for counters).
    pub tracker_recovery_stalls: u64,

    // --- memory ordering (Figure 4 / 6(b)) ---
    /// Memory-order violations (traps → commit-time flush).
    pub memory_traps: u64,
    /// False dependencies imposed by Store Sets (load waited on a
    /// non-overlapping store).
    pub false_dependencies: u64,
    /// Loads renamed with a live Store Sets dependence.
    pub loads_with_dep: u64,
    /// µ-ops whose issue was delayed at least one cycle by a Store Sets
    /// dependence.
    pub dep_waits: u64,
    /// Waited loads whose dependence store really overlapped.
    pub dep_true: u64,
    /// Waited loads whose dependence store had already left the ROB.
    pub dep_gone: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Store-to-load forwards performed.
    pub stlf_forwards: u64,

    // --- move elimination (Figure 5) ---
    /// Moves eliminated at rename.
    pub moves_eliminated: u64,
    /// Eliminable moves that could not be eliminated (tracker full/ports).
    pub moves_not_eliminated: u64,

    // --- SMB (Figures 6/7) ---
    /// Loads that bypassed through the PRF.
    pub loads_bypassed: u64,
    /// Bypassed loads whose validation failed (commit-time flush).
    pub bypass_mispredictions: u64,
    /// Bypasses aborted: tracker refused (full/saturated/kind).
    pub bypass_aborted_tracker: u64,
    /// Bypasses aborted: predicted producer not reachable in the ROB.
    pub bypass_no_producer: u64,
    /// Bypasses from committed-but-unreleased entries (lazy reclaim).
    pub bypass_from_committed: u64,
    /// Confident distance predictions issued.
    pub distance_predictions: u64,

    // --- ISRB traffic (§6.3) ---
    /// Mean µ-op distance between consecutive tracker share-allocations.
    pub share_distance: RunningMean,
    /// Mean µ-op distance between consecutive reclaim CAM checks at commit.
    pub reclaim_check_distance: RunningMean,
    /// Commits whose reclaim skipped the CAM under the §4.3.4 flag filter.
    pub reclaims_flag_filtered: u64,
    /// Commits whose reclaim performed the CAM.
    pub reclaims_cam_checked: u64,
    /// Commit stall cycles due to exhausted reclaim CAM ports.
    pub reclaim_port_stalls: u64,
    /// Bypasses aborted due to exhausted rename CAM ports.
    pub bypass_aborted_ports: u64,

    // --- recovery bookkeeping ---
    /// Commit-time flushes (memory traps + bypass validation failures).
    pub commit_flushes: u64,
    /// Peak simultaneously live checkpoints.
    pub peak_checkpoints: usize,

    /// Tracker-internal statistics snapshot.
    pub tracker: TrackerStats,
}

regshare_types::impl_snap!(SimStats {
    cycles,
    committed,
    renamed,
    branches,
    branch_mispredicts,
    squashed_uops,
    tracker_recovery_stalls,
    memory_traps,
    false_dependencies,
    loads_with_dep,
    dep_waits,
    dep_true,
    dep_gone,
    loads,
    stores,
    stlf_forwards,
    moves_eliminated,
    moves_not_eliminated,
    loads_bypassed,
    bypass_mispredictions,
    bypass_aborted_tracker,
    bypass_no_producer,
    bypass_from_committed,
    distance_predictions,
    share_distance,
    reclaim_check_distance,
    reclaims_flag_filtered,
    reclaims_cam_checked,
    reclaim_port_stalls,
    bypass_aborted_ports,
    commit_flushes,
    peak_checkpoints,
    tracker
});

impl SimStats {
    /// Committed µ-ops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Percentage of renamed µ-ops that were eliminated (Figure 5(b)).
    pub fn pct_renamed_eliminated(&self) -> f64 {
        regshare_types::stats::pct(self.moves_eliminated, self.renamed)
    }

    /// Percentage of committed loads that bypassed (§6.2 quotes 32.3% /
    /// 35.7% averages).
    pub fn pct_loads_bypassed(&self) -> f64 {
        regshare_types::stats::pct(self.loads_bypassed, self.loads)
    }

    /// Branch MPKI over the committed window.
    pub fn branch_mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 * 1000.0 / self.committed as f64
        }
    }

    /// Subtracts a warmup snapshot from an end-of-run snapshot so the
    /// measured window excludes warmup activity (monotonic counters only;
    /// running means and peaks are left as end-of-run values).
    pub fn delta_since(&self, warm: &SimStats) -> SimStats {
        SimStats {
            cycles: self.cycles - warm.cycles,
            committed: self.committed - warm.committed,
            renamed: self.renamed - warm.renamed,
            branches: self.branches - warm.branches,
            branch_mispredicts: self.branch_mispredicts - warm.branch_mispredicts,
            squashed_uops: self.squashed_uops - warm.squashed_uops,
            tracker_recovery_stalls: self.tracker_recovery_stalls - warm.tracker_recovery_stalls,
            memory_traps: self.memory_traps - warm.memory_traps,
            false_dependencies: self.false_dependencies - warm.false_dependencies,
            loads_with_dep: self.loads_with_dep - warm.loads_with_dep,
            dep_waits: self.dep_waits - warm.dep_waits,
            dep_true: self.dep_true - warm.dep_true,
            dep_gone: self.dep_gone - warm.dep_gone,
            loads: self.loads - warm.loads,
            stores: self.stores - warm.stores,
            stlf_forwards: self.stlf_forwards - warm.stlf_forwards,
            moves_eliminated: self.moves_eliminated - warm.moves_eliminated,
            moves_not_eliminated: self.moves_not_eliminated - warm.moves_not_eliminated,
            loads_bypassed: self.loads_bypassed - warm.loads_bypassed,
            bypass_mispredictions: self.bypass_mispredictions - warm.bypass_mispredictions,
            bypass_aborted_tracker: self.bypass_aborted_tracker - warm.bypass_aborted_tracker,
            bypass_no_producer: self.bypass_no_producer - warm.bypass_no_producer,
            bypass_from_committed: self.bypass_from_committed - warm.bypass_from_committed,
            distance_predictions: self.distance_predictions - warm.distance_predictions,
            share_distance: self.share_distance,
            reclaim_check_distance: self.reclaim_check_distance,
            reclaims_flag_filtered: self.reclaims_flag_filtered - warm.reclaims_flag_filtered,
            reclaims_cam_checked: self.reclaims_cam_checked - warm.reclaims_cam_checked,
            reclaim_port_stalls: self.reclaim_port_stalls - warm.reclaim_port_stalls,
            bypass_aborted_ports: self.bypass_aborted_ports - warm.bypass_aborted_ports,
            commit_flushes: self.commit_flushes - warm.commit_flushes,
            peak_checkpoints: self.peak_checkpoints,
            tracker: self.tracker,
        }
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cycles {:>12}   committed {:>12}   IPC {:.3}",
            self.cycles,
            self.committed,
            self.ipc()
        )?;
        writeln!(
            f,
            "branches {} (mispredicts {}, {:.2} MPKI)   squashed {}",
            self.branches,
            self.branch_mispredicts,
            self.branch_mpki(),
            self.squashed_uops
        )?;
        writeln!(
            f,
            "loads {} / stores {}   STLF {}   traps {}   false deps {}",
            self.loads, self.stores, self.stlf_forwards, self.memory_traps, self.false_dependencies
        )?;
        writeln!(
            f,
            "ME: {} eliminated ({:.2}% of renamed), {} not eliminated",
            self.moves_eliminated,
            self.pct_renamed_eliminated(),
            self.moves_not_eliminated
        )?;
        write!(
            f,
            "SMB: {} bypassed ({:.1}% of loads), {} validation failures, {} aborted (tracker)",
            self.loads_bypassed,
            self.pct_loads_bypassed(),
            self.bypass_mispredictions,
            self.bypass_aborted_tracker
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn derived_percentages() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            renamed: 300,
            moves_eliminated: 30,
            loads: 50,
            loads_bypassed: 10,
            ..SimStats::default()
        };
        assert_eq!(s.ipc(), 2.5);
        assert_eq!(s.pct_renamed_eliminated(), 10.0);
        assert_eq!(s.pct_loads_bypassed(), 20.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = SimStats {
            cycles: 10,
            committed: 25,
            loads: 3,
            ..SimStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("IPC 2.500"));
        assert!(text.contains("loads 3"));
    }

    #[test]
    fn delta_subtracts_counters() {
        let warm = SimStats {
            cycles: 10,
            committed: 20,
            ..SimStats::default()
        };
        let end = SimStats {
            cycles: 110,
            committed: 270,
            ..SimStats::default()
        };
        let d = end.delta_since(&warm);
        assert_eq!(d.cycles, 100);
        assert_eq!(d.committed, 250);
    }
}

//! Workspace smoke test: the `regshare` facade must re-export every
//! subsystem crate, and a trivial ISRB share/reclaim round-trip must run
//! entirely through facade paths.

use regshare::refcount::{
    Isrb, IsrbConfig, ReclaimDecision, ReclaimRequest, ShareKind, ShareRequest, SharingTracker,
};
use regshare::types::{ArchReg, PhysReg, RegClass};

/// Every facade module re-export resolves to the expected type or
/// constructor. Compiling this function is most of the assertion.
#[test]
fn facade_reexports_resolve() {
    let _core_cfg: regshare::core::CoreConfig = regshare::core::CoreConfig::hpca16();
    let _isrb_cfg: regshare::refcount::IsrbConfig = IsrbConfig::hpca16();
    let _cache = regshare::mem::Cache::new(regshare::mem::CacheConfig {
        size_bytes: 512,
        ways: 2,
        line_bytes: 64,
        latency: 1,
    });
    let _tage = regshare::predictors::Tage::new(regshare::predictors::TageConfig::hpca16());
    let _ddt_cfg = regshare::distance::DdtConfig::opt1k();
    let program = {
        let mut b = regshare::isa::program::ProgramBuilder::new();
        b.push(regshare::isa::Op::Halt);
        b.build()
    };
    assert!(
        !program.is_empty(),
        "program builder reachable through facade"
    );
    let suite = regshare::workloads::suite();
    assert!(!suite.is_empty(), "workload suite reachable through facade");
    let _window = regshare::bench::RunWindow::quick();
    assert!(
        regshare::bench::jobs_from_env() >= 1,
        "sweep engine reachable through facade"
    );
    // The scenario layer is re-exported both under `bench` and at the
    // facade root.
    let s: regshare::Scenario = regshare::preset("headline").expect("built-in preset");
    assert_eq!(s.name, "headline");
    let _spec: regshare::VariantSpec = regshare::VariantSpec::hpca16();
    let _opts: regshare::RunOptions = regshare::RunOptions::default();
    let _builder: regshare::CoreConfigBuilder = regshare::core::CoreConfig::builder();
    assert!(matches!(
        regshare::bench::Scenario::parse("no name here"),
        Err(regshare::ScenarioError::Syntax { .. })
    ));
}

/// A share/reclaim round-trip through the facade: sharing a register makes
/// the first reclaim keep it and the second reclaim free it.
#[test]
fn isrb_share_reclaim_round_trip() {
    let mut isrb = Isrb::new(IsrbConfig::hpca16());
    let preg = PhysReg::new(42);
    let share = ShareRequest {
        class: RegClass::Int,
        preg,
        kind: ShareKind::Bypass {
            arch_dst: ArchReg::int(1),
        },
    };
    let reclaim = ReclaimRequest {
        class: RegClass::Int,
        preg,
        arch: ArchReg::int(1),
        renews: false,
    };

    assert!(isrb.try_share(&share), "empty ISRB must accept a share");
    assert!(isrb.is_shared(RegClass::Int, preg));
    assert_eq!(isrb.shared_count(), 1);

    // Two mappings reference p42 (the original plus the sharer): the first
    // reclaim must keep the register, the second must free it.
    assert_eq!(isrb.on_reclaim(&reclaim), ReclaimDecision::Keep);
    assert_eq!(isrb.on_reclaim(&reclaim), ReclaimDecision::Free);
    assert!(!isrb.is_shared(RegClass::Int, preg));
    assert_eq!(isrb.shared_count(), 0);
}

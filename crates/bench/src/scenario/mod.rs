//! The scenario layer: named, validated, file-backed experiment
//! definitions.
//!
//! The paper's results are a matrix of (workload × core configuration ×
//! tracker geometry) points. A [`Scenario`] captures one such matrix as
//! *data* — a name, a workload list, run options, and an ordered list of
//! labelled [`VariantSpec`]s — so an experiment can be named, validated,
//! checked into the repo as a `.scenario` file ([`Scenario::parse`] /
//! [`Scenario::render`], a dependency-free TOML subset), shared, and driven
//! through the sweep engine ([`Scenario::to_sweep`]) without recompiling.
//!
//! Three entry points:
//!
//! - [`Scenario::builder`] — the programmatic route, with hard validation:
//!   invalid configs fail with typed [`ScenarioError`]s at
//!   [`ScenarioBuilder::build`] time instead of silently misbehaving;
//! - [`preset`] — the named experiments every binary understands
//!   (`headline`, `smoke`, the paper figures);
//! - [`Scenario::load`] — the `.scenario` file front door used by
//!   `paper_report --scenario` and `smoke --scenario`.

mod text;

use crate::options::RunOptions;
use crate::sweep::SweepSpec;
use regshare_core::{
    ConfigError, CoreConfig, CoreConfigBuilder, DistancePredictorKind, TrackerKind,
};
use regshare_distance::{DdtConfig, NosqConfig};
use regshare_refcount::IsrbConfig;
use regshare_workloads::fuzz::FuzzSpec;
use regshare_workloads::{suite, try_by_names, AsmSpec, Workload};

/// Any way a scenario can be malformed: syntax errors in a `.scenario`
/// file, unknown names (presets, trackers, predictors, workloads), misused
/// keys, or a variant whose resolved [`CoreConfig`] fails
/// [`CoreConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A line the text parser could not understand.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A key that is not part of the scenario schema.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The rejected key.
        key: String,
    },
    /// The same key given twice in one scope.
    DuplicateKey {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// A value of the wrong type for its key.
    WrongType {
        /// 1-based line number.
        line: usize,
        /// The key.
        key: String,
        /// What the schema expects there.
        expected: &'static str,
    },
    /// A scenario file without a `name` key.
    MissingName,
    /// A name outside the `[A-Za-z0-9_.-]+` identifier charset (which is
    /// what keeps the text format round-trip stable).
    InvalidName {
        /// Which kind of name (`"scenario"`, `"variant label"`, …).
        what: &'static str,
        /// The rejected name.
        name: String,
    },
    /// A note containing a quote, backslash or control character — the
    /// text format has no escape sequences, so it could not be rendered
    /// to a parseable `.scenario` file.
    InvalidNote(String),
    /// A worker count of zero (`RunOptions::jobs` hand-set to `Some(0)`;
    /// the text parser and CLI reject it at their own boundaries).
    ZeroJobs,
    /// A checkpoint interval of zero µ-ops: the writer would fire before
    /// any progress was made (the CLI and text parser reject 0 too).
    ZeroCheckpointInterval,
    /// A `resume_from` path that is empty or contains a quote, backslash
    /// or control character — the text format has no escape sequences, so
    /// such a path could not be rendered to a parseable `.scenario` file.
    InvalidResumePath(String),
    /// A scenario with no variants: there is nothing to sweep.
    NoVariants,
    /// Two variants with the same label (the later one would be
    /// unaddressable in every grid accessor).
    DuplicateVariant(String),
    /// A `preset` value that names no known configuration preset.
    UnknownPreset(String),
    /// A `tracker` value that names no [`TrackerKind`].
    UnknownTracker(String),
    /// A `distance` value that names no [`DistancePredictorKind`].
    UnknownDistance(String),
    /// A `ddt` value that names no known DDT geometry.
    UnknownDdt(String),
    /// A workload name absent from the suite registry.
    UnknownWorkload(String),
    /// A `kind` value that is none of `"suite"`, `"fuzz"`, `"asm"`.
    UnknownKind(String),
    /// A fuzz-only key (`seed`, `profile`, `programs`) without
    /// `kind = "fuzz"`.
    FuzzKeyWithoutKind {
        /// The offending key.
        key: &'static str,
    },
    /// A fuzz scenario that also lists `workloads` (the generated family
    /// *is* the workload list).
    FuzzWithWorkloads,
    /// A `profile` value naming no fuzz generator profile.
    UnknownFuzzProfile(String),
    /// A fuzz scenario generating zero programs.
    ZeroFuzzPrograms,
    /// An asm-only key (`kernel`, `path`) without `kind = "asm"`.
    AsmKeyWithoutKind {
        /// The offending key.
        key: &'static str,
    },
    /// An asm scenario that also lists `workloads` (the kernel selection
    /// *is* the workload list).
    AsmWithWorkloads,
    /// A scenario carrying both a fuzz family and an asm source; only one
    /// generated workload source can apply.
    AsmWithFuzz,
    /// An asm scenario naming both an embedded `kernel` and an external
    /// `path` — pick one (or neither, for the whole corpus).
    AsmKernelAndPath,
    /// A `kernel` value naming no embedded corpus kernel.
    UnknownAsmKernel(String),
    /// An asm `path` that is empty or contains a quote, backslash or
    /// control character — the text format has no escape sequences, so it
    /// could not be rendered to a parseable `.scenario` file.
    InvalidAsmPath(String),
    /// An external assembly file that failed to assemble.
    AsmParse {
        /// The file's path.
        path: String,
        /// The assembler error, including its line number.
        msg: String,
    },
    /// A key that only makes sense for a tracker the variant did not
    /// select (e.g. `walk_width` without `tracker = "counters"`).
    KeyRequiresTracker {
        /// The offending key.
        key: &'static str,
        /// The tracker(s) the key belongs to.
        tracker: &'static str,
    },
    /// The resolved [`CoreConfig`] is structurally impossible.
    Config(ConfigError),
    /// The sweep failed after validation — a worker job died or a grid
    /// accessor was asked for an unknown label (see
    /// [`SweepError`](crate::sweep::SweepError)).
    Sweep(crate::sweep::SweepError),
    /// An error in one specific variant, wrapped with its label.
    InVariant {
        /// The variant's label.
        label: String,
        /// The underlying error.
        source: Box<ScenarioError>,
    },
    /// A `.scenario` file that could not be read.
    Io {
        /// The path given.
        path: String,
        /// The OS error text.
        msg: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ScenarioError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key {key:?}")
            }
            ScenarioError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key {key:?}")
            }
            ScenarioError::WrongType {
                line,
                key,
                expected,
            } => write!(f, "line {line}: {key} expects {expected}"),
            ScenarioError::MissingName => write!(f, "scenario has no `name` key"),
            ScenarioError::InvalidName { what, name } => write!(
                f,
                "invalid {what} name {name:?} (allowed characters: A-Z a-z 0-9 _ . -)"
            ),
            ScenarioError::InvalidNote(note) => write!(
                f,
                "note {note:?} contains a quote, backslash or control character \
                 (the scenario format has no escape sequences)"
            ),
            ScenarioError::ZeroJobs => write!(f, "jobs must be at least 1"),
            ScenarioError::ZeroCheckpointInterval => {
                write!(f, "checkpoint_interval must be at least 1 µ-op")
            }
            ScenarioError::InvalidResumePath(path) => write!(
                f,
                "resume_from path {path:?} is empty or contains a quote, backslash \
                 or control character (the scenario format has no escape sequences)"
            ),
            ScenarioError::NoVariants => write!(f, "scenario declares no variants"),
            ScenarioError::DuplicateVariant(label) => {
                write!(f, "duplicate variant label {label:?}")
            }
            ScenarioError::UnknownPreset(name) => write!(
                f,
                "unknown config preset {name:?} (known: {})",
                CONFIG_PRESETS
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            ScenarioError::UnknownTracker(name) => write!(
                f,
                "unknown tracker {name:?} (known: isrb, unlimited, counters, roth, mit, rda)"
            ),
            ScenarioError::UnknownDistance(name) => {
                write!(f, "unknown distance predictor {name:?} (known: tage, nosq)")
            }
            ScenarioError::UnknownDdt(name) => write!(
                f,
                "unknown ddt geometry {name:?} (known: base16k, opt1k, unlimited)"
            ),
            ScenarioError::UnknownWorkload(name) => {
                write!(
                    f,
                    "unknown workload {name:?} (see `regshare_workloads::names`, \
                     or fuzz-<profile>-<seed>)"
                )
            }
            ScenarioError::UnknownKind(kind) => {
                write!(
                    f,
                    "unknown scenario kind {kind:?} (known: suite, fuzz, asm)"
                )
            }
            ScenarioError::FuzzKeyWithoutKind { key } => {
                write!(f, "{key} requires kind = \"fuzz\"")
            }
            ScenarioError::FuzzWithWorkloads => write!(
                f,
                "a fuzz scenario generates its workload list; drop `workloads = [...]`"
            ),
            ScenarioError::UnknownFuzzProfile(name) => write!(
                f,
                "unknown fuzz profile {name:?} (known: {})",
                regshare_workloads::fuzz::profile_names().join(", ")
            ),
            ScenarioError::ZeroFuzzPrograms => write!(f, "programs must be at least 1"),
            ScenarioError::AsmKeyWithoutKind { key } => {
                write!(f, "{key} requires kind = \"asm\"")
            }
            ScenarioError::AsmWithWorkloads => write!(
                f,
                "an asm scenario selects its workload list; drop `workloads = [...]`"
            ),
            ScenarioError::AsmWithFuzz => write!(
                f,
                "a scenario cannot combine a fuzz family with an asm source"
            ),
            ScenarioError::AsmKernelAndPath => {
                write!(f, "an asm scenario takes `kernel` or `path`, not both")
            }
            ScenarioError::UnknownAsmKernel(name) => write!(
                f,
                "unknown asm kernel {name:?} (known: {})",
                regshare_workloads::asm::CORPUS
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            ScenarioError::InvalidAsmPath(path) => write!(
                f,
                "asm path {path:?} is empty or contains a quote, backslash \
                 or control character (the scenario format has no escape sequences)"
            ),
            ScenarioError::AsmParse { path, msg } => {
                write!(f, "cannot assemble {path:?}: {msg}")
            }
            ScenarioError::KeyRequiresTracker { key, tracker } => {
                write!(f, "{key} only applies to tracker = {tracker}")
            }
            ScenarioError::Config(e) => write!(f, "invalid core config: {e}"),
            ScenarioError::Sweep(e) => write!(f, "sweep failed: {e}"),
            ScenarioError::InVariant { label, source } => {
                write!(f, "variant {label:?}: {source}")
            }
            ScenarioError::Io { path, msg } => write!(f, "cannot read {path:?}: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Config(e) => Some(e),
            ScenarioError::Sweep(e) => Some(e),
            ScenarioError::InVariant { source, .. } => Some(&**source),
            _ => None,
        }
    }
}

impl From<ConfigError> for ScenarioError {
    fn from(e: ConfigError) -> ScenarioError {
        ScenarioError::Config(e)
    }
}

impl From<crate::sweep::SweepError> for ScenarioError {
    fn from(e: crate::sweep::SweepError) -> ScenarioError {
        ScenarioError::Sweep(e)
    }
}

/// Checks the `[A-Za-z0-9_.-]+` identifier charset shared by scenario
/// names, variant labels and workload names; it is what keeps the text
/// format unambiguous and round-trip stable.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-')
}

fn check_name(what: &'static str, name: &str) -> Result<(), ScenarioError> {
    if valid_name(name) {
        Ok(())
    } else {
        Err(ScenarioError::InvalidName {
            what,
            name: name.to_string(),
        })
    }
}

/// Checks free-text note content: the format has no escape sequences, so a
/// quote, backslash or control character in a note would render to a
/// `.scenario` file that cannot be parsed back.
pub fn valid_note(note: &str) -> bool {
    !note
        .chars()
        .any(|c| c == '"' || c == '\\' || c.is_control())
}

/// The configuration presets a [`VariantSpec`] can start from, with a
/// one-line description each.
pub const CONFIG_PRESETS: [(&str, &str); 5] = [
    ("hpca16", "Table 1 baseline, all sharing off"),
    ("me", "baseline + move elimination"),
    ("smb", "baseline + speculative memory bypassing"),
    ("me_smb", "baseline + both mechanisms"),
    (
        "lazy_reclaim",
        "SMB + bypassing from committed µ-ops (lazy register reclaim)",
    ),
];

fn config_preset(name: &str) -> Result<CoreConfig, ScenarioError> {
    Ok(match name {
        "hpca16" => CoreConfig::hpca16(),
        "me" => CoreConfig::hpca16().with_me(),
        "smb" => CoreConfig::hpca16().with_smb(),
        "me_smb" => CoreConfig::hpca16().with_me().with_smb(),
        "lazy_reclaim" => {
            let mut cfg = CoreConfig::hpca16().with_smb();
            cfg.smb_from_committed = true;
            cfg
        }
        other => return Err(ScenarioError::UnknownPreset(other.to_string())),
    })
}

/// One labelled configuration column of a scenario: a named preset plus
/// explicit overrides. Everything is addressable by string — presets,
/// every [`TrackerKind`], every [`DistancePredictorKind`], the DDT
/// geometries — which is what lets `.scenario` files express the full
/// configuration space.
///
/// Unset (`None`) fields keep the preset's value; [`VariantSpec::to_config`]
/// resolves the spec into a validated [`CoreConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct VariantSpec {
    /// Base preset name (see [`CONFIG_PRESETS`]).
    pub preset: String,
    /// Move elimination (§2).
    pub me: Option<bool>,
    /// FP-to-FP move elimination.
    pub me_fp_moves: Option<bool>,
    /// Speculative memory bypassing (§3).
    pub smb: Option<bool>,
    /// Load-load bypassing (§6.2).
    pub smb_load_load: Option<bool>,
    /// Bypassing from committed µ-ops under lazy reclaim (§3.3).
    pub smb_from_committed: Option<bool>,
    /// Tracker name: `isrb`, `unlimited`, `counters`, `roth`, `mit`, `rda`.
    pub tracker: Option<String>,
    /// ISRB entries (0 = unlimited). Selects the ISRB tracker if no
    /// `tracker` key says otherwise.
    pub isrb_entries: Option<usize>,
    /// Sharing-counter width in bits (ISRB or RDA).
    pub counter_bits: Option<u32>,
    /// Tracker CAM ports available to rename per cycle (0 = unlimited);
    /// bypasses beyond this abort (§4.3.4).
    pub rename_ports: Option<usize>,
    /// Tracker CAM ports available to reclaim per cycle (0 = unlimited);
    /// reclaims beyond this stall commit (§4.3.4).
    pub reclaim_ports: Option<usize>,
    /// Squash-walk width; requires `tracker = "counters"`.
    pub walk_width: Option<usize>,
    /// Associative entries; requires `tracker = "mit"` or `"rda"`.
    pub tracker_entries: Option<usize>,
    /// Distance predictor name: `tage` or `nosq`.
    pub distance: Option<String>,
    /// DDT geometry name: `base16k`, `opt1k` or `unlimited`.
    pub ddt: Option<String>,
    /// Fetch/decode/rename width override.
    pub frontend_width: Option<usize>,
    /// Issue width override.
    pub issue_width: Option<usize>,
    /// Retire width override.
    pub commit_width: Option<usize>,
    /// ROB size override.
    pub rob_entries: Option<usize>,
    /// IQ size override.
    pub iq_entries: Option<usize>,
    /// Load-queue size override.
    pub lq_entries: Option<usize>,
    /// Store-queue size override.
    pub sq_entries: Option<usize>,
    /// Physical registers per class override.
    pub pregs_per_class: Option<usize>,
}

impl VariantSpec {
    /// A spec that is exactly the named preset (overrides can be chained on
    /// top). The name is resolved — and rejected with a typed error — at
    /// [`VariantSpec::to_config`] / [`ScenarioBuilder::build`] time.
    pub fn preset(name: impl Into<String>) -> VariantSpec {
        VariantSpec {
            preset: name.into(),
            me: None,
            me_fp_moves: None,
            smb: None,
            smb_load_load: None,
            smb_from_committed: None,
            tracker: None,
            isrb_entries: None,
            counter_bits: None,
            rename_ports: None,
            reclaim_ports: None,
            walk_width: None,
            tracker_entries: None,
            distance: None,
            ddt: None,
            frontend_width: None,
            issue_width: None,
            commit_width: None,
            rob_entries: None,
            iq_entries: None,
            lq_entries: None,
            sq_entries: None,
            pregs_per_class: None,
        }
    }

    /// The Table 1 baseline preset.
    pub fn hpca16() -> VariantSpec {
        VariantSpec::preset("hpca16")
    }

    /// Sets move elimination.
    pub fn me(mut self, on: bool) -> Self {
        self.me = Some(on);
        self
    }

    /// Sets FP-to-FP move elimination.
    pub fn me_fp_moves(mut self, on: bool) -> Self {
        self.me_fp_moves = Some(on);
        self
    }

    /// Sets speculative memory bypassing.
    pub fn smb(mut self, on: bool) -> Self {
        self.smb = Some(on);
        self
    }

    /// Sets load-load bypassing.
    pub fn smb_load_load(mut self, on: bool) -> Self {
        self.smb_load_load = Some(on);
        self
    }

    /// Sets bypassing from committed µ-ops (lazy reclaim).
    pub fn smb_from_committed(mut self, on: bool) -> Self {
        self.smb_from_committed = Some(on);
        self
    }

    /// Selects a tracker by name.
    pub fn tracker(mut self, name: impl Into<String>) -> Self {
        self.tracker = Some(name.into());
        self
    }

    /// Sets the ISRB entry count (0 = unlimited).
    pub fn isrb_entries(mut self, entries: usize) -> Self {
        self.isrb_entries = Some(entries);
        self
    }

    /// Sets the sharing-counter width.
    pub fn counter_bits(mut self, bits: u32) -> Self {
        self.counter_bits = Some(bits);
        self
    }

    /// Sets the tracker rename/reclaim CAM port counts (0 = unlimited).
    pub fn ports(mut self, rename: usize, reclaim: usize) -> Self {
        self.rename_ports = Some(rename);
        self.reclaim_ports = Some(reclaim);
        self
    }

    /// Sets the per-register-counter squash-walk width.
    pub fn walk_width(mut self, width: usize) -> Self {
        self.walk_width = Some(width);
        self
    }

    /// Sets the MIT/RDA associative entry count.
    pub fn tracker_entries(mut self, entries: usize) -> Self {
        self.tracker_entries = Some(entries);
        self
    }

    /// Selects a distance predictor by name.
    pub fn distance(mut self, name: impl Into<String>) -> Self {
        self.distance = Some(name.into());
        self
    }

    /// Selects a DDT geometry by name.
    pub fn ddt(mut self, name: impl Into<String>) -> Self {
        self.ddt = Some(name.into());
        self
    }

    /// Resolves the spec into a validated [`CoreConfig`].
    pub fn to_config(&self) -> Result<CoreConfig, ScenarioError> {
        let base = config_preset(&self.preset)?;
        let mut b = CoreConfigBuilder::from(base);
        if let Some(on) = self.me {
            b = b.move_elimination(on);
        }
        if let Some(on) = self.me_fp_moves {
            b = b.me_fp_moves(on);
        }
        if let Some(on) = self.smb {
            b = b.smb(on);
        }
        if let Some(on) = self.smb_load_load {
            b = b.smb_load_load(on);
        }
        if let Some(on) = self.smb_from_committed {
            b = b.smb_from_committed(on);
        }
        b = self.apply_tracker(b)?;
        if let Some(p) = self.rename_ports {
            b = b.tweak(|c| c.tracker_rename_ports = p);
        }
        if let Some(p) = self.reclaim_ports {
            b = b.tweak(|c| c.tracker_reclaim_ports = p);
        }
        if let Some(name) = &self.distance {
            b = b.distance_predictor(match name.as_str() {
                "tage" => DistancePredictorKind::default(),
                "nosq" => DistancePredictorKind::Nosq(NosqConfig::hpca16()),
                other => return Err(ScenarioError::UnknownDistance(other.to_string())),
            });
        }
        if let Some(name) = &self.ddt {
            b = b.ddt(match name.as_str() {
                "base16k" => DdtConfig::base16k(),
                "opt1k" => DdtConfig::opt1k(),
                "unlimited" => DdtConfig::unlimited(),
                other => return Err(ScenarioError::UnknownDdt(other.to_string())),
            });
        }
        for (v, f) in [
            (
                self.frontend_width,
                CoreConfigBuilder::frontend_width
                    as fn(CoreConfigBuilder, usize) -> CoreConfigBuilder,
            ),
            (self.issue_width, CoreConfigBuilder::issue_width),
            (self.commit_width, CoreConfigBuilder::commit_width),
            (self.rob_entries, CoreConfigBuilder::rob_entries),
            (self.iq_entries, CoreConfigBuilder::iq_entries),
            (self.lq_entries, CoreConfigBuilder::lq_entries),
            (self.sq_entries, CoreConfigBuilder::sq_entries),
            (self.pregs_per_class, CoreConfigBuilder::pregs_per_class),
        ] {
            if let Some(v) = v {
                b = f(b, v);
            }
        }
        Ok(b.build()?)
    }

    /// Applies tracker selection + geometry, rejecting keys that do not
    /// belong to the selected tracker instead of silently ignoring them.
    fn apply_tracker(&self, b: CoreConfigBuilder) -> Result<CoreConfigBuilder, ScenarioError> {
        let isrb_geometry = |cur: &TrackerKind, spec: &VariantSpec| -> IsrbConfig {
            let mut cfg = match cur {
                TrackerKind::Isrb(c) => *c,
                _ => IsrbConfig::hpca16(),
            };
            if let Some(n) = spec.isrb_entries {
                cfg.entries = n;
            }
            if let Some(bits) = spec.counter_bits {
                cfg.counter_bits = bits;
            }
            cfg
        };
        let reject_isrb_keys = || -> Result<(), ScenarioError> {
            if self.isrb_entries.is_some() {
                return Err(ScenarioError::KeyRequiresTracker {
                    key: "isrb_entries",
                    tracker: "isrb",
                });
            }
            Ok(())
        };
        let reject_walk = || -> Result<(), ScenarioError> {
            if self.walk_width.is_some() {
                return Err(ScenarioError::KeyRequiresTracker {
                    key: "walk_width",
                    tracker: "counters",
                });
            }
            Ok(())
        };
        let reject_entries = || -> Result<(), ScenarioError> {
            if self.tracker_entries.is_some() {
                return Err(ScenarioError::KeyRequiresTracker {
                    key: "tracker_entries",
                    tracker: "mit / rda",
                });
            }
            Ok(())
        };
        let reject_counter_bits = || -> Result<(), ScenarioError> {
            if self.counter_bits.is_some() {
                return Err(ScenarioError::KeyRequiresTracker {
                    key: "counter_bits",
                    tracker: "isrb / rda",
                });
            }
            Ok(())
        };
        match self.tracker.as_deref() {
            None | Some("isrb") => {
                reject_walk()?;
                reject_entries()?;
                // With no tracker key, ISRB geometry keys re-shape (or
                // switch to) the ISRB, mirroring `with_isrb_entries`.
                let touches_isrb = self.tracker.is_some()
                    || self.isrb_entries.is_some()
                    || self.counter_bits.is_some();
                if touches_isrb {
                    let cfg = isrb_geometry(b.peek_tracker(), self);
                    Ok(b.tracker(TrackerKind::Isrb(cfg)))
                } else {
                    Ok(b)
                }
            }
            Some("unlimited") => {
                reject_isrb_keys()?;
                reject_counter_bits()?;
                reject_walk()?;
                reject_entries()?;
                Ok(b.tracker(TrackerKind::Unlimited))
            }
            Some("roth") => {
                reject_isrb_keys()?;
                reject_counter_bits()?;
                reject_walk()?;
                reject_entries()?;
                Ok(b.tracker(TrackerKind::RothMatrix))
            }
            Some("counters") => {
                reject_isrb_keys()?;
                reject_counter_bits()?;
                reject_entries()?;
                Ok(b.tracker(TrackerKind::PerRegCounters {
                    walk_width: self.walk_width.unwrap_or(8),
                }))
            }
            Some("mit") => {
                reject_isrb_keys()?;
                reject_counter_bits()?;
                reject_walk()?;
                Ok(b.tracker(TrackerKind::Mit {
                    entries: self.tracker_entries.unwrap_or(8),
                }))
            }
            Some("rda") => {
                reject_isrb_keys()?;
                reject_walk()?;
                Ok(b.tracker(TrackerKind::Rda {
                    entries: self.tracker_entries.unwrap_or(32),
                    counter_bits: self.counter_bits.unwrap_or(3),
                }))
            }
            Some(other) => Err(ScenarioError::UnknownTracker(other.to_string())),
        }
    }
}

/// A generated workload family: `kind = "fuzz"` in a `.scenario` file.
/// Expands to `programs` consecutive fuzz cases
/// (`fuzz-<profile>-<seed>` … `fuzz-<profile>-<seed+programs-1>`) in place
/// of a hand-listed workload set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSource {
    /// Generator profile name (see `regshare_workloads::fuzz::profiles`).
    pub profile: String,
    /// First seed of the family.
    pub seed: u64,
    /// Family size.
    pub programs: u32,
}

/// An assembled-kernel workload source: `kind = "asm"` in a `.scenario`
/// file. Selects the embedded `programs/*.asm` corpus (no keys), one
/// kernel from it (`kernel = "quicksort"`), or an external assembly file
/// (`path = "my.asm"`), which is read and assembled when workloads
/// resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmSource {
    /// Embedded corpus kernel short name (see
    /// `regshare_workloads::asm::CORPUS`); `None` selects the whole corpus
    /// unless `path` is given.
    pub kernel: Option<String>,
    /// External assembly file, assembled at resolution time with typed
    /// errors ([`ScenarioError::AsmParse`]).
    pub path: Option<String>,
}

/// A named, validated experiment: workloads × labelled variants, plus run
/// options. The unit the sweep engine, the binaries' CLIs, and `.scenario`
/// files all exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (identifier charset, see [`valid_name`]).
    pub name: String,
    /// Free-text note printed in report headers (empty = none).
    pub note: String,
    /// Window sizes and parallelism; unset fields fall back to the
    /// deprecated `REGSHARE_*` environment variables, then defaults.
    pub options: RunOptions,
    /// Workload names, resolved against the registry (suite names and
    /// `fuzz-<profile>-<seed>`); empty means the full 36-workload suite —
    /// unless [`Scenario::fuzz`] supplies a generated family instead.
    pub workloads: Vec<String>,
    /// Generated workload family (`kind = "fuzz"`); mutually exclusive
    /// with a non-empty `workloads` list.
    pub fuzz: Option<FuzzSource>,
    /// Assembled-kernel source (`kind = "asm"`); mutually exclusive with
    /// both `fuzz` and a non-empty `workloads` list.
    pub asm: Option<AsmSource>,
    /// Ordered labelled variants; the first is the baseline column.
    pub variants: Vec<(String, VariantSpec)>,
    /// Checkpoint-write interval in committed µ-ops. `Some(n)` makes runs
    /// resumable: a versioned machine snapshot is written every `n` µ-ops
    /// (see `crate::checkpoint`). `None` runs without checkpointing;
    /// `Some(0)` is rejected by validation.
    pub checkpoint_interval: Option<u64>,
    /// Path of a checkpoint file to resume from (written by an earlier
    /// checkpointed run of this same scenario). `None` starts fresh.
    pub resume_from: Option<String>,
}

impl Scenario {
    /// Starts a [`ScenarioBuilder`].
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.into(),
                note: String::new(),
                options: RunOptions::default(),
                workloads: Vec::new(),
                fuzz: None,
                asm: None,
                variants: Vec::new(),
                checkpoint_interval: None,
                resume_from: None,
            },
        }
    }

    /// Parses the `.scenario` text format. Inverse of [`Scenario::render`]:
    /// `parse(render(s)) == s` for every valid scenario.
    pub fn parse(text_src: &str) -> Result<Scenario, ScenarioError> {
        text::parse(text_src)
    }

    /// Renders the canonical `.scenario` text. Stable: rendering, parsing
    /// and rendering again is byte-identical.
    pub fn render(&self) -> String {
        text::render(self)
    }

    /// Reads and parses a `.scenario` file.
    pub fn load(path: &str) -> Result<Scenario, ScenarioError> {
        let text_src = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.to_string(),
            msg: e.to_string(),
        })?;
        Scenario::parse(&text_src)
    }

    /// One resolution pass shared by [`Scenario::validate`] and
    /// [`Scenario::to_sweep`]: checks every name and option, and returns
    /// the resolved workloads and per-variant configurations so callers
    /// never resolve (or build the suite) twice.
    fn resolved(&self) -> Result<(Vec<Workload>, Vec<CoreConfig>), ScenarioError> {
        check_name("scenario", &self.name)?;
        if !valid_note(&self.note) {
            return Err(ScenarioError::InvalidNote(self.note.clone()));
        }
        if self.options.jobs == Some(0) {
            // The text parser and CLI reject 0 too; a hand-constructed
            // Some(0) would otherwise render to an unparseable file.
            return Err(ScenarioError::ZeroJobs);
        }
        if self.checkpoint_interval == Some(0) {
            return Err(ScenarioError::ZeroCheckpointInterval);
        }
        if let Some(path) = &self.resume_from {
            if path.is_empty() || !valid_note(path) {
                return Err(ScenarioError::InvalidResumePath(path.clone()));
            }
        }
        if self.variants.is_empty() {
            return Err(ScenarioError::NoVariants);
        }
        let mut configs = Vec::with_capacity(self.variants.len());
        for (i, (label, spec)) in self.variants.iter().enumerate() {
            check_name("variant label", label)?;
            if self.variants[..i].iter().any(|(l, _)| l == label) {
                return Err(ScenarioError::DuplicateVariant(label.clone()));
            }
            configs.push(spec.to_config().map_err(|e| ScenarioError::InVariant {
                label: label.clone(),
                source: Box::new(e),
            })?);
        }
        Ok((self.resolve_workloads()?, configs))
    }

    /// Full validation: names, labels, options, workload existence, and
    /// every variant's resolved core configuration.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.resolved().map(|_| ())
    }

    /// The workload list this scenario runs over — the generated fuzz
    /// family, the assembled-kernel source, the named workloads, or the
    /// full suite when none is given — with unknown names rejected as
    /// typed errors.
    pub fn resolve_workloads(&self) -> Result<Vec<Workload>, ScenarioError> {
        if self.fuzz.is_some() && self.asm.is_some() {
            return Err(ScenarioError::AsmWithFuzz);
        }
        if let Some(asm) = &self.asm {
            if !self.workloads.is_empty() {
                return Err(ScenarioError::AsmWithWorkloads);
            }
            return match (&asm.kernel, &asm.path) {
                (Some(_), Some(_)) => Err(ScenarioError::AsmKernelAndPath),
                (Some(kernel), None) => AsmSpec::new(kernel)
                    .map(|spec| vec![spec.workload()])
                    .ok_or_else(|| ScenarioError::UnknownAsmKernel(kernel.clone())),
                (None, Some(path)) => {
                    if path.is_empty() || !valid_note(path) {
                        return Err(ScenarioError::InvalidAsmPath(path.clone()));
                    }
                    let src = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
                        path: path.clone(),
                        msg: e.to_string(),
                    })?;
                    let stem = std::path::Path::new(path)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    check_name("asm kernel", &stem)?;
                    AsmSpec::from_source(stem, src)
                        .map(|spec| vec![spec.workload()])
                        .map_err(|e| ScenarioError::AsmParse {
                            path: path.clone(),
                            msg: e.to_string(),
                        })
                }
                (None, None) => Ok(regshare_workloads::asm::corpus_workloads()),
            };
        }
        if let Some(fuzz) = &self.fuzz {
            if !self.workloads.is_empty() {
                return Err(ScenarioError::FuzzWithWorkloads);
            }
            if fuzz.programs == 0 {
                return Err(ScenarioError::ZeroFuzzPrograms);
            }
            return (0..fuzz.programs as u64)
                .map(|i| {
                    FuzzSpec::new(fuzz.profile.clone(), fuzz.seed.wrapping_add(i))
                        .map(|spec| spec.workload())
                        .map_err(ScenarioError::UnknownFuzzProfile)
                })
                .collect();
        }
        if self.workloads.is_empty() {
            return Ok(suite());
        }
        for name in &self.workloads {
            check_name("workload", name)?;
        }
        try_by_names(&self.workloads).map_err(ScenarioError::UnknownWorkload)
    }

    /// Validates the scenario and expands it into a ready-to-run
    /// [`SweepSpec`] — the bridge from declarative scenario to the
    /// deterministic parallel sweep engine.
    pub fn to_sweep(&self) -> Result<SweepSpec, ScenarioError> {
        let (workloads, configs) = self.resolved()?;
        let mut spec = SweepSpec::new(workloads, self.options.window());
        if let Some(jobs) = self.options.jobs {
            spec = spec.jobs(jobs);
        }
        for ((label, _), cfg) in self.variants.iter().zip(configs) {
            spec = spec.variant(label.clone(), cfg);
        }
        Ok(spec)
    }
}

impl SweepSpec {
    /// Expands a validated scenario into a sweep — equivalent to
    /// [`Scenario::to_sweep`], for call sites that read better spec-first.
    pub fn from_scenario(scenario: &Scenario) -> Result<SweepSpec, ScenarioError> {
        scenario.to_sweep()
    }
}

/// Fluent, validating constructor for [`Scenario`].
///
/// # Examples
///
/// ```
/// use regshare_bench::{RunOptions, Scenario, VariantSpec};
///
/// let scenario = Scenario::builder("isrb_sizing")
///     .options(RunOptions::default().warmup(1_000).measure(4_000))
///     .workloads(&["crafty", "hmmer"])
///     .variant("base", VariantSpec::hpca16())
///     .variant("both24", VariantSpec::preset("me_smb").isrb_entries(24))
///     .build()
///     .unwrap();
/// let grid = scenario.to_sweep().unwrap().run().unwrap();
/// assert!(grid.get(0, "both24").unwrap().ipc() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the free-text note shown in report headers.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.scenario.note = note.into();
        self
    }

    /// Sets the run options (window sizes, parallelism).
    pub fn options(mut self, options: RunOptions) -> Self {
        self.scenario.options = options;
        self
    }

    /// Names the workloads to run (replacing any previous list).
    pub fn workloads(mut self, names: &[&str]) -> Self {
        self.scenario.workloads = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Runs over the full 36-workload suite (the default).
    pub fn full_suite(mut self) -> Self {
        self.scenario.workloads.clear();
        self.scenario.fuzz = None;
        self.scenario.asm = None;
        self
    }

    /// Runs over a generated fuzz family instead of named workloads
    /// (`kind = "fuzz"` in scenario files).
    pub fn fuzz(mut self, profile: impl Into<String>, seed: u64, programs: u32) -> Self {
        self.scenario.fuzz = Some(FuzzSource {
            profile: profile.into(),
            seed,
            programs,
        });
        self.scenario.asm = None;
        self
    }

    /// Runs over the whole embedded `programs/*.asm` corpus
    /// (`kind = "asm"` with no selector keys in scenario files).
    pub fn asm_corpus(mut self) -> Self {
        self.scenario.asm = Some(AsmSource {
            kernel: None,
            path: None,
        });
        self.scenario.fuzz = None;
        self
    }

    /// Runs over one embedded corpus kernel (`kind = "asm"` +
    /// `kernel = "<name>"` in scenario files).
    pub fn asm_kernel(mut self, kernel: impl Into<String>) -> Self {
        self.scenario.asm = Some(AsmSource {
            kernel: Some(kernel.into()),
            path: None,
        });
        self.scenario.fuzz = None;
        self
    }

    /// Runs over an external assembly file, read and assembled when
    /// workloads resolve (`kind = "asm"` + `path = "<file>"`).
    pub fn asm_path(mut self, path: impl Into<String>) -> Self {
        self.scenario.asm = Some(AsmSource {
            kernel: None,
            path: Some(path.into()),
        });
        self.scenario.fuzz = None;
        self
    }

    /// Makes runs resumable: write a machine checkpoint every `uops`
    /// committed µ-ops. Zero is rejected at [`ScenarioBuilder::build`].
    pub fn checkpoint_interval(mut self, uops: u64) -> Self {
        self.scenario.checkpoint_interval = Some(uops);
        self
    }

    /// Resumes from a checkpoint file written by an earlier checkpointed
    /// run of this same scenario.
    pub fn resume_from(mut self, path: impl Into<String>) -> Self {
        self.scenario.resume_from = Some(path.into());
        self
    }

    /// Appends a labelled variant.
    pub fn variant(mut self, label: impl Into<String>, spec: VariantSpec) -> Self {
        self.scenario.variants.push((label.into(), spec));
        self
    }

    /// Validates everything and returns the finished scenario; the error
    /// pinpoints the offending variant, key or name.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        self.scenario.validate()?;
        Ok(self.scenario)
    }
}

/// The built-in named scenarios (`--list-presets` in the binaries). Each
/// covers one of the paper's experiments end to end.
pub const SCENARIO_PRESETS: [(&str, &str); 9] = [
    (
        "smoke",
        "quick shape check: ME / SMB / combined on 9 representative workloads",
    ),
    (
        "headline",
        "paper-vs-measured headline matrix over the full suite",
    ),
    ("fig4_baseline", "Figure 4: baseline characterization"),
    ("fig5_me", "Figure 5: move elimination vs ISRB size"),
    (
        "fig6_smb",
        "Figure 6(a): SMB vs ISRB size (+ NoSQ predictor)",
    ),
    (
        "fig6c_committed",
        "Figure 6(c): eager vs lazy reclaim (bypass from committed)",
    ),
    ("fig7_combined", "Figure 7: ME+SMB combined vs ISRB size"),
    (
        "fuzz_smoke",
        "IPC sweep over a generated fuzz family (differential checks live in the fuzz bin)",
    ),
    (
        "asm_kernels",
        "assembled real-program corpus under every configuration preset",
    ),
];

/// Builds the named preset scenario, or `None` for an unknown name.
pub fn preset(name: &str) -> Option<Scenario> {
    let b = match name {
        "smoke" => Scenario::builder("smoke")
            .note("quick shape check: ME / SMB / combined speedups")
            .workloads(&[
                "crafty", "vortex", "hmmer", "astar", "bzip", "namd", "wupwise", "applu", "mcf",
            ])
            .variant("base", VariantSpec::hpca16())
            .variant("me", VariantSpec::preset("me"))
            .variant("smb", VariantSpec::preset("smb"))
            .variant("both", VariantSpec::preset("me_smb")),
        "headline" => Scenario::builder("headline")
            .note(
                "paper: ME+SMB geomean +5.5% at 32 ISRB entries, +5.6% unlimited, \
                 up to +39.6% (applu)",
            )
            .variant("base", VariantSpec::hpca16())
            .variant("meUnl", VariantSpec::preset("me").isrb_entries(0))
            .variant("smbUnl", VariantSpec::preset("smb").isrb_entries(0))
            .variant("both32", VariantSpec::preset("me_smb").isrb_entries(32))
            .variant("bothUnl", VariantSpec::preset("me_smb").isrb_entries(0)),
        "fig4_baseline" => Scenario::builder("fig4_baseline")
            .note("paper: IPC spread ~0.5-3.5; trap counts span orders of magnitude")
            .variant("base", VariantSpec::hpca16()),
        "fig5_me" => Scenario::builder("fig5_me")
            .note("paper: a handful of ISRB entries suffice; ~1% gmean, up to ~5%")
            .variant("base", VariantSpec::hpca16())
            .variant("me8", VariantSpec::preset("me").isrb_entries(8))
            .variant("me16", VariantSpec::preset("me").isrb_entries(16))
            .variant("me32", VariantSpec::preset("me").isrb_entries(32))
            .variant("meUnl", VariantSpec::preset("me").isrb_entries(0)),
        "fig6_smb" => Scenario::builder("fig6_smb")
            .note("paper: SMB needs ~24 entries; TAGE-like > NoSQ-style predictor")
            .variant("base", VariantSpec::hpca16())
            .variant("smb16", VariantSpec::preset("smb").isrb_entries(16))
            .variant("smb24", VariantSpec::preset("smb").isrb_entries(24))
            .variant("smb32", VariantSpec::preset("smb").isrb_entries(32))
            .variant("smbUnl", VariantSpec::preset("smb").isrb_entries(0))
            .variant(
                "nosqUnl",
                VariantSpec::preset("smb").isrb_entries(0).distance("nosq"),
            ),
        "fig6c_committed" => Scenario::builder("fig6c_committed")
            .note("paper: generally marginal, harmful at 24 entries, helps latency-bound outliers")
            .variant("base", VariantSpec::hpca16())
            .variant("eager-unl", VariantSpec::preset("smb").isrb_entries(0))
            .variant(
                "lazy-unl",
                VariantSpec::preset("lazy_reclaim").isrb_entries(0),
            )
            .variant("eager-24", VariantSpec::preset("smb").isrb_entries(24))
            .variant(
                "lazy-24",
                VariantSpec::preset("lazy_reclaim").isrb_entries(24),
            ),
        "fig7_combined" => Scenario::builder("fig7_combined")
            .note("paper: 32 entries ~= unlimited (5.5% vs 5.6% gmean); 24 a good tradeoff")
            .variant("base", VariantSpec::hpca16())
            .variant("both16", VariantSpec::preset("me_smb").isrb_entries(16))
            .variant("both24", VariantSpec::preset("me_smb").isrb_entries(24))
            .variant("both32", VariantSpec::preset("me_smb").isrb_entries(32))
            .variant("bothUnl", VariantSpec::preset("me_smb").isrb_entries(0))
            .variant("meUnl", VariantSpec::preset("me").isrb_entries(0))
            .variant("smbUnl", VariantSpec::preset("smb").isrb_entries(0)),
        "fuzz_smoke" => Scenario::builder("fuzz_smoke")
            .note("generated programs through the standard sweep; seeds are replayable")
            .fuzz("balanced", 1, 8)
            .variant("base", VariantSpec::hpca16())
            .variant("both", VariantSpec::preset("me_smb")),
        "asm_kernels" => Scenario::builder("asm_kernels")
            .note("hand-written kernels with real control flow; differential-gated vs the oracle")
            .asm_corpus()
            .variant("base", VariantSpec::hpca16())
            .variant("me", VariantSpec::preset("me"))
            .variant("smb", VariantSpec::preset("smb"))
            .variant("both", VariantSpec::preset("me_smb"))
            .variant("lazy", VariantSpec::preset("lazy_reclaim")),
        _ => return None,
    };
    Some(b.build().expect("presets are valid by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_builds_and_validates() {
        for (name, _) in SCENARIO_PRESETS {
            let s = preset(name).expect("preset exists");
            assert_eq!(s.name, name);
            s.validate().expect("preset validates");
        }
        assert!(preset("nope").is_none());
    }

    #[test]
    fn preset_matrix_matches_the_hand_built_config() {
        let s = preset("headline").unwrap();
        let (label, spec) = &s.variants[3];
        assert_eq!(label, "both32");
        let cfg = spec.to_config().unwrap();
        let hand = CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_isrb_entries(32);
        assert!(cfg.move_elimination && cfg.smb);
        match (cfg.tracker, hand.tracker) {
            (TrackerKind::Isrb(a), TrackerKind::Isrb(b)) => assert_eq!(a, b),
            _ => panic!("both ISRB"),
        }

        // fig6c's eager/lazy pairs must reproduce the old hand-mutated
        // configs: lazy = smb + smb_from_committed at the same ISRB size.
        let s = preset("fig6c_committed").unwrap();
        for (label, entries, lazy) in [
            ("eager-unl", 0usize, false),
            ("lazy-unl", 0, true),
            ("eager-24", 24, false),
            ("lazy-24", 24, true),
        ] {
            let spec = &s.variants.iter().find(|(l, _)| l == label).unwrap().1;
            let cfg = spec.to_config().unwrap();
            assert!(cfg.smb && !cfg.move_elimination, "{label}");
            assert_eq!(cfg.smb_from_committed, lazy, "{label}");
            match cfg.tracker {
                TrackerKind::Isrb(i) => assert_eq!(i.entries, entries, "{label}"),
                _ => panic!("{label}: ISRB expected"),
            }
        }
    }

    #[test]
    fn every_tracker_and_predictor_is_addressable_by_name() {
        for (tracker, expect) in [
            ("isrb", "ISRB"),
            ("unlimited", "unlimited"),
            ("counters", "counters"),
            ("roth", "matrix"),
            ("mit", "MIT"),
            ("rda", "RDA"),
        ] {
            let cfg = VariantSpec::hpca16().tracker(tracker).to_config().unwrap();
            let built = cfg.tracker.build(cfg.pregs_per_class, cfg.rob_entries);
            assert!(
                built.name().to_lowercase().contains(&expect.to_lowercase()),
                "tracker {tracker:?} resolved to {:?}",
                built.name()
            );
        }
        for distance in ["tage", "nosq"] {
            VariantSpec::hpca16()
                .distance(distance)
                .to_config()
                .unwrap();
        }
        for ddt in ["base16k", "opt1k", "unlimited"] {
            VariantSpec::hpca16().ddt(ddt).to_config().unwrap();
        }
    }

    #[test]
    fn unknown_names_fail_with_typed_errors() {
        assert_eq!(
            VariantSpec::preset("hpca17").to_config().unwrap_err(),
            ScenarioError::UnknownPreset("hpca17".into())
        );
        assert_eq!(
            VariantSpec::hpca16()
                .tracker("lru")
                .to_config()
                .unwrap_err(),
            ScenarioError::UnknownTracker("lru".into())
        );
        assert_eq!(
            VariantSpec::hpca16()
                .distance("oracle")
                .to_config()
                .unwrap_err(),
            ScenarioError::UnknownDistance("oracle".into())
        );
        assert_eq!(
            VariantSpec::hpca16().ddt("huge").to_config().unwrap_err(),
            ScenarioError::UnknownDdt("huge".into())
        );
    }

    #[test]
    fn invalid_configs_fail_with_typed_errors_not_silent_runs() {
        // ISRB larger than the PRF.
        let err = Scenario::builder("bad")
            .variant("v", VariantSpec::hpca16().isrb_entries(4096))
            .build()
            .unwrap_err();
        match err {
            ScenarioError::InVariant { label, source } => {
                assert_eq!(label, "v");
                assert_eq!(
                    *source,
                    ScenarioError::Config(ConfigError::IsrbExceedsPrf {
                        entries: 4096,
                        pregs: 256
                    })
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Zero walk width.
        let err = VariantSpec::hpca16()
            .tracker("counters")
            .walk_width(0)
            .to_config()
            .unwrap_err();
        assert_eq!(err, ScenarioError::Config(ConfigError::ZeroWalkWidth));
    }

    #[test]
    fn misplaced_tracker_keys_are_rejected() {
        assert_eq!(
            VariantSpec::hpca16().walk_width(4).to_config().unwrap_err(),
            ScenarioError::KeyRequiresTracker {
                key: "walk_width",
                tracker: "counters"
            }
        );
        assert_eq!(
            VariantSpec::hpca16()
                .tracker("unlimited")
                .isrb_entries(8)
                .to_config()
                .unwrap_err(),
            ScenarioError::KeyRequiresTracker {
                key: "isrb_entries",
                tracker: "isrb"
            }
        );
        assert_eq!(
            VariantSpec::hpca16()
                .tracker_entries(8)
                .to_config()
                .unwrap_err(),
            ScenarioError::KeyRequiresTracker {
                key: "tracker_entries",
                tracker: "mit / rda"
            }
        );
    }

    #[test]
    fn unknown_workloads_and_duplicate_labels_are_rejected() {
        let err = Scenario::builder("bad")
            .workloads(&["crafty", "doom"])
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::UnknownWorkload("doom".into()));

        let err = Scenario::builder("bad")
            .variant("base", VariantSpec::hpca16())
            .variant("base", VariantSpec::preset("me"))
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::DuplicateVariant("base".into()));

        let err = Scenario::builder("bad").build().unwrap_err();
        assert_eq!(err, ScenarioError::NoVariants);

        let err = Scenario::builder("no spaces allowed")
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidName { .. }));
    }

    #[test]
    fn hand_set_zero_jobs_is_rejected_before_it_can_render() {
        // The jobs() setter clamps and the parser/CLI reject 0; a
        // pub-field construction is the only way in, and validate()
        // closes it so render() can never emit an unparseable file.
        let mut s = Scenario::builder("x")
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap();
        s.options.jobs = Some(0);
        assert_eq!(s.validate().unwrap_err(), ScenarioError::ZeroJobs);
        assert_eq!(
            Scenario::parse(&s.render()).unwrap_err(),
            ScenarioError::ZeroJobs
        );
    }

    #[test]
    fn fuzz_scenarios_resolve_generated_families_with_typed_guards() {
        let s = Scenario::builder("f")
            .fuzz("memory", 10, 3)
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap();
        let workloads = s.resolve_workloads().unwrap();
        assert_eq!(workloads.len(), 3);
        assert_eq!(workloads[0].name, "fuzz-memory-10");
        assert_eq!(workloads[2].name, "fuzz-memory-12");

        let err = Scenario::builder("f")
            .fuzz("doom", 1, 2)
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::UnknownFuzzProfile("doom".into()));

        let err = Scenario::builder("f")
            .fuzz("memory", 1, 0)
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::ZeroFuzzPrograms);

        let err = Scenario::builder("f")
            .workloads(&["crafty"])
            .fuzz("memory", 1, 2)
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::FuzzWithWorkloads);

        // Individual fuzz names also resolve through the registry path.
        let s = Scenario::builder("mixed")
            .workloads(&["crafty", "fuzz-balanced-3"])
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap();
        assert_eq!(s.resolve_workloads().unwrap()[1].name, "fuzz-balanced-3");
    }

    #[test]
    fn asm_scenarios_resolve_kernels_with_typed_guards() {
        let s = Scenario::builder("a")
            .asm_kernel("matmul")
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap();
        let workloads = s.resolve_workloads().unwrap();
        assert_eq!(workloads.len(), 1);
        assert_eq!(workloads[0].name, "asm-matmul");

        let s = Scenario::builder("a")
            .asm_corpus()
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap();
        let workloads = s.resolve_workloads().unwrap();
        assert_eq!(workloads.len(), regshare_workloads::asm::CORPUS.len());
        assert!(workloads.iter().all(|w| w.name.starts_with("asm-")));

        let err = Scenario::builder("a")
            .asm_kernel("doom")
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::UnknownAsmKernel("doom".into()));

        let err = Scenario::builder("a")
            .workloads(&["crafty"])
            .asm_corpus()
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::AsmWithWorkloads);

        // kernel + path (only reachable by hand-mutation) is rejected.
        let mut s = Scenario::builder("a")
            .asm_kernel("matmul")
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap();
        s.asm.as_mut().unwrap().path = Some("x.asm".into());
        assert_eq!(s.validate().unwrap_err(), ScenarioError::AsmKernelAndPath);

        // So is a hand-set fuzz family alongside an asm source.
        let mut s = Scenario::builder("a")
            .asm_corpus()
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap();
        s.fuzz = Some(FuzzSource {
            profile: "balanced".into(),
            seed: 1,
            programs: 2,
        });
        assert_eq!(s.validate().unwrap_err(), ScenarioError::AsmWithFuzz);

        // `asm-<kernel>` names also resolve through the registry path.
        let s = Scenario::builder("mixed")
            .workloads(&["crafty", "asm-quicksort"])
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap();
        assert_eq!(s.resolve_workloads().unwrap()[1].name, "asm-quicksort");
    }

    #[test]
    fn asm_path_scenarios_assemble_external_files() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp");
        std::fs::create_dir_all(&dir).unwrap();

        let good = dir.join(format!("asm-path-ok-{}.asm", std::process::id()));
        std::fs::write(&good, "    li r15, 1\n    halt\n").unwrap();
        let s = Scenario::builder("ext")
            .asm_path(good.to_str().unwrap())
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap();
        let workloads = s.resolve_workloads().unwrap();
        assert_eq!(workloads.len(), 1);
        assert!(workloads[0].name.starts_with("asm-asm-path-ok-"));
        assert_eq!(workloads[0].build().len(), 2);
        std::fs::remove_file(&good).ok();

        // Assembly errors surface as typed AsmParse with the asm line.
        let bad = dir.join(format!("asm-path-bad-{}.asm", std::process::id()));
        std::fs::write(&bad, "    bogus r1\n").unwrap();
        let err = Scenario::builder("ext")
            .asm_path(bad.to_str().unwrap())
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap_err();
        match err {
            ScenarioError::AsmParse { msg, .. } => assert!(msg.contains("line 1"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        std::fs::remove_file(&bad).ok();

        // A missing file is an Io error, not a panic.
        let err = Scenario::builder("ext")
            .asm_path(dir.join("nope.asm").to_str().unwrap())
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::Io { .. }));
    }

    #[test]
    fn asm_preset_drives_the_sweep_engine() {
        let mut s = preset("asm_kernels").expect("preset exists");
        s.options = RunOptions::default().warmup(300).measure(900).jobs(2);
        let grid = s.to_sweep().unwrap().run().unwrap();
        assert_eq!(grid.workloads().len(), 4);
        assert_eq!(
            grid.labels(),
            &["base", "me", "smb", "both", "lazy"].map(String::from)
        );
        assert!(grid.get(0, "both").unwrap().ipc() > 0.0);
        assert!(grid.workloads()[0].name.starts_with("asm-"));
    }

    #[test]
    fn fuzz_preset_drives_the_sweep_engine() {
        let mut s = preset("fuzz_smoke").expect("preset exists");
        s.options = RunOptions::default().warmup(300).measure(900).jobs(2);
        let grid = s.to_sweep().unwrap().run().unwrap();
        assert_eq!(grid.workloads().len(), 8);
        assert!(grid.get(0, "both").unwrap().ipc() > 0.0);
        assert!(grid.workloads()[0].name.starts_with("fuzz-balanced-"));
    }

    #[test]
    fn unescapable_notes_are_rejected_not_rendered_broken() {
        // The format has no escape sequences: a quote, backslash or
        // newline in the note would render to unparseable text, so
        // validation rejects it up front.
        for note in ["say \"hi\"", "back\\slash", "two\nlines"] {
            let err = Scenario::builder("x")
                .note(note)
                .variant("base", VariantSpec::hpca16())
                .build()
                .unwrap_err();
            assert_eq!(err, ScenarioError::InvalidNote(note.to_string()));
        }
        // Ordinary punctuation and non-ASCII text stay allowed.
        let s = Scenario::builder("x")
            .note("geomean +5.5% (µ-ops, ISRB=32)")
            .variant("base", VariantSpec::hpca16())
            .build()
            .unwrap();
        assert_eq!(Scenario::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn scenario_drives_the_sweep_engine() {
        let s = Scenario::builder("tiny")
            .options(RunOptions::default().warmup(500).measure(1_500).jobs(2))
            .workloads(&["crafty"])
            .variant("base", VariantSpec::hpca16())
            .variant("both", VariantSpec::preset("me_smb"))
            .build()
            .unwrap();
        let grid = SweepSpec::from_scenario(&s).unwrap().run().unwrap();
        assert_eq!(grid.labels(), &["base".to_string(), "both".to_string()]);
        assert!(grid.get(0, "both").unwrap().ipc() > 0.0);
        assert_eq!(grid.get(0, "base").unwrap().name, "crafty");
    }
}

//! The out-of-order core simulator hosting the paper's mechanisms.
//!
//! A cycle-level model of the Table 1 machine: 8-wide fetch/decode/rename,
//! 6-issue, 192-entry ROB, 60-entry unified IQ, 72/48-entry LQ/SQ with
//! 4-cycle store-to-load forwarding, 256+256 physical registers,
//! checkpoint-based branch recovery with a ~20-cycle minimum misprediction
//! penalty, Store Sets memory dependence prediction, and the full memory
//! hierarchy from `regshare-mem`.
//!
//! On top of that substrate it implements the paper's contributions:
//!
//! - **Move elimination** (§2) at rename for eliminable integer (and
//!   optionally FP) moves, gated by a pluggable [`SharingTracker`];
//! - **Speculative Memory Bypassing** (§3) driven by an Instruction
//!   Distance predictor and the commit-side DDT, generalized to load-load
//!   pairs, with value validation at load writeback;
//! - **Bypassing from committed instructions** (§3.3) under lazy register
//!   reclaiming with a third `release_head` ROB pointer;
//! - **Register reference counting** (§4) through any
//!   [`SharingTracker`] implementation — the ISRB by default.
//!
//! # Quick start
//!
//! ```
//! use regshare_core::{CoreConfig, Simulator};
//! use regshare_workloads::mini;
//!
//! let mut cfg = CoreConfig::hpca16();
//! cfg.move_elimination = true;
//! let mut sim = Simulator::new(&mini().build(), cfg);
//! let stats = sim.run(20_000);
//! assert!(stats.ipc() > 0.1);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod lsq;
pub mod rename;
pub mod rob;
pub mod sim;
pub mod stats;

pub use config::{ConfigError, CoreConfig, CoreConfigBuilder, DistancePredictorKind, TrackerKind};
pub use regshare_refcount::SharingTracker;
pub use sim::Simulator;
pub use stats::SimStats;

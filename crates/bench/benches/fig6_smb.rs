//! **Figure 6(a)+(b)**: speculative memory bypassing (store-load +
//! load-load, in-window only).
//!
//! (a) Speedup over baseline vs ISRB entries (16/24/32/∞) with the
//!     TAGE-like distance predictor, plus the NoSQ-style predictor at ∞
//!     (the paper finds the 2-table predictor "does not improve performance
//!     much, contrarily to our TAGE-like predictor").
//! (b) Reduction in memory traps and false dependencies (∞ ISRB), reported
//!     for workloads where the baseline events occur reasonably often.
//!
//! Paper shape: SMB needs ~24 entries; speedups correlate with trap /
//! false-dependency reductions; TAGE-like > NoSQ-style.
//!
//! The matrix is the `fig6_smb` preset scenario (`smb` preset at each ISRB
//! size, plus `distance = "nosq"` — every predictor is addressable by name).

use regshare_bench::{preset, Table};

const SIZES: [(usize, &str); 4] = [(16, "smb16"), (24, "smb24"), (32, "smb32"), (0, "smbUnl")];

fn main() {
    let scenario = preset("fig6_smb").expect("built-in scenario");
    let grid = scenario
        .to_sweep()
        .expect("preset validates")
        .run()
        .expect("sweep completes");

    let mut t = Table::new(vec![
        "bench",
        "base_ipc",
        "smb16%",
        "smb24%",
        "smb32%",
        "smbUnl%",
        "nosqUnl%",
        "loads_byp%",
    ]);
    let mut t2 = Table::new(vec![
        "bench",
        "traps_base",
        "traps_smb",
        "fdeps_base",
        "fdeps_smb",
        "speedup%",
    ]);
    for row in grid.rows() {
        let base = row.get("base").expect("declared label");
        let unl = row.get("smbUnl").expect("declared label");
        let mut cells = vec![row.workload().name.clone(), format!("{:.3}", base.ipc())];
        for (_, label) in SIZES {
            cells.push(format!(
                "{:+.2}",
                row.speedup("base", label).expect("declared label")
            ));
        }
        cells.push(format!(
            "{:+.2}",
            row.speedup("base", "nosqUnl").expect("declared label")
        ));
        cells.push(format!("{:.1}%", unl.stats.pct_loads_bypassed()));
        t.row(cells);
        // Figure 6(b): only workloads with meaningful baseline event counts.
        if base.stats.memory_traps >= 3 || base.stats.false_dependencies >= 100 {
            t2.row(vec![
                row.workload().name.clone(),
                format!("{}", base.stats.memory_traps),
                format!("{}", unl.stats.memory_traps),
                format!("{}", base.stats.false_dependencies),
                format!("{}", unl.stats.false_dependencies),
                format!(
                    "{:+.2}",
                    row.speedup("base", "smbUnl").expect("declared label")
                ),
            ]);
        }
    }
    for (label, pretty) in [
        ("smb16", "16"),
        ("smb24", "24"),
        ("smb32", "32"),
        ("smbUnl", "unlimited"),
        ("nosqUnl", "nosq-unl"),
    ] {
        t.footer(format!(
            "geomean speedup, {pretty}: {:+.2}%",
            grid.geomean_speedup("base", label).expect("declared label")
        ));
    }
    println!("# Figure 6(a): SMB speedup vs ISRB size (+ NoSQ-style predictor)\n");
    t.print();
    println!("\n# Figure 6(b): trap / false-dependency reduction (unlimited ISRB)\n");
    if t2.is_empty() {
        println!("(no workload had enough baseline traps / false dependencies at this window)");
    } else {
        t2.print();
    }
}

//! Resumable sweeps: periodic on-disk checkpoints of a running scenario.
//!
//! A checkpointed run writes a single image file as it goes: the list of
//! already-measured cells plus — mid-cell — a complete versioned machine
//! snapshot ([`Simulator::save_snapshot`]). Killing the process at any
//! point loses at most `checkpoint_interval` committed µ-ops of work;
//! resuming with the same scenario finishes the sweep and produces output
//! **byte-identical** to an uninterrupted run (the commit budget is an
//! absolute committed-count target, so an observational checkpoint
//! callback cannot perturb the machine — see
//! [`Simulator::run_with_checkpoints`]).
//!
//! The image is pinned to its scenario by a digest header over the
//! scenario's canonical rendering with the window resolved and the
//! parallelism/checkpoint keys cleared, so resuming is robust to `--jobs`
//! and to *where* the window came from (flags, file, environment) while a
//! different scenario or window is refused with a typed
//! [`SnapError::ConfigDigestMismatch`]. Each embedded machine snapshot
//! additionally self-validates against its (configuration, program) pair.
//!
//! Checkpointed execution is serial (one cell at a time, in the same
//! row-major order the parallel engine merges in); the measurement
//! protocol is identical, so the finished [`SweepGrid`] matches the
//! parallel engine's cell for cell. [`run_sweep`] falls back to the
//! parallel engine when the scenario requests no checkpointing. On
//! success the image file is deleted.

use crate::harness::Measurement;
use crate::report::render_report;
use crate::scenario::{Scenario, ScenarioError};
use crate::sweep::SweepGrid;
use regshare_core::{CoreConfig, SimStats, Simulator};
use regshare_isa::Program;
use regshare_types::snapshot::{
    read_header, write_header, Snap, SnapError, SnapReader, SnapWriter,
};

/// Any way a checkpointed run can fail: an invalid scenario, a malformed
/// or mismatched image, or filesystem trouble.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The scenario itself is invalid.
    Scenario(ScenarioError),
    /// The image file is corrupt, truncated, or recorded under a
    /// different scenario/window (or its machine snapshot under a
    /// different configuration/program).
    Snapshot(SnapError),
    /// The image decoded cleanly but does not fit this scenario's sweep
    /// (e.g. more completed cells than the matrix has, or a recorded cell
    /// name that is not the workload at that position).
    Invalid(String),
    /// `resume_from` names a file that does not exist.
    Missing {
        /// The path given.
        path: String,
    },
    /// The checkpoint file could not be read, written, or replaced.
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        msg: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Scenario(e) => write!(f, "{e}"),
            CheckpointError::Snapshot(e) => write!(f, "bad checkpoint image: {e}"),
            CheckpointError::Invalid(msg) => write!(f, "checkpoint does not fit scenario: {msg}"),
            CheckpointError::Missing { path } => {
                write!(f, "nothing to resume: {path:?} does not exist")
            }
            CheckpointError::Io { path, msg } => write!(f, "checkpoint file {path:?}: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Scenario(e) => Some(e),
            CheckpointError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScenarioError> for CheckpointError {
    fn from(e: ScenarioError) -> CheckpointError {
        CheckpointError::Scenario(e)
    }
}

impl From<SnapError> for CheckpointError {
    fn from(e: SnapError) -> CheckpointError {
        CheckpointError::Snapshot(e)
    }
}

impl From<crate::sweep::SweepError> for CheckpointError {
    fn from(e: crate::sweep::SweepError) -> CheckpointError {
        CheckpointError::Scenario(ScenarioError::Sweep(e))
    }
}

// The digest pinning an image to its scenario lives in the shared digest
// module, so checkpoint images and the serve daemon's result cache key
// experiments identically.
pub use crate::digest::scenario_digest;

/// The decoded image payload: measured cells in row-major order plus an
/// optional mid-cell machine state.
struct Image {
    /// Checkpoint interval the writing run used (committed µ-ops).
    interval: u64,
    /// Finished cells, a prefix of the row-major (workload × variant)
    /// order; `completed.len()` is the next cell index.
    completed: Vec<(String, SimStats)>,
    /// In-flight cell `completed.len()`: warmup-end stats (`None` while
    /// still warming up) and the machine snapshot bytes.
    in_progress: Option<(Option<SimStats>, Vec<u8>)>,
}

fn encode_image(digest: u64, image: &Image) -> Vec<u8> {
    let mut w = SnapWriter::new();
    write_header(&mut w, digest);
    w.put_u64(image.interval);
    image.completed.encode(&mut w);
    image.in_progress.encode(&mut w);
    w.finish()
}

fn decode_image(bytes: &[u8], digest: u64) -> Result<Image, SnapError> {
    let mut r = SnapReader::new(bytes);
    read_header(&mut r, digest)?;
    let interval = r.get_u64()?;
    if interval == 0 {
        return Err(r.corrupt("zero checkpoint interval"));
    }
    let completed = Snap::decode(&mut r)?;
    let in_progress = Snap::decode(&mut r)?;
    r.expect_eof()?;
    Ok(Image {
        interval,
        completed,
        in_progress,
    })
}

fn io_err(path: &str, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_string(),
        msg: e.to_string(),
    }
}

/// Writes the image atomically: a sibling `.tmp` file renamed over the
/// target, so a kill mid-write can never leave a torn checkpoint.
fn write_image(path: &str, digest: u64, image: &Image) -> Result<(), CheckpointError> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, encode_image(digest, image)).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

fn load_image(path: &str, digest: u64) -> Result<Image, CheckpointError> {
    let bytes = std::fs::read(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            CheckpointError::Missing {
                path: path.to_string(),
            }
        } else {
            io_err(path, e)
        }
    })?;
    Ok(decode_image(&bytes, digest)?)
}

/// The default image path when the caller names none: `<scenario>.ckpt`
/// in the working directory.
pub fn default_checkpoint_path(scenario: &Scenario) -> String {
    format!("{}.ckpt", scenario.name)
}

/// Runs the scenario's sweep, honouring its checkpoint keys.
///
/// - Neither `checkpoint_interval` nor `resume_from` set: the plain
///   parallel engine ([`Scenario::to_sweep`]), no files touched.
/// - `checkpoint_interval = n`: serial resumable execution, writing the
///   image to `file` (default [`default_checkpoint_path`]) every `n`
///   committed µ-ops and after every finished cell; the file is deleted
///   on success.
/// - `resume_from = path`: loads the image first and continues from it.
///   A requested interval overrides the recorded one. Subsequent
///   checkpoints go to `file` if given, else back to `path`.
///
/// # Errors
///
/// Typed [`CheckpointError`]s for invalid scenarios, missing/corrupt/
/// foreign images, and filesystem failures.
pub fn run_sweep(scenario: &Scenario, file: Option<&str>) -> Result<SweepGrid, CheckpointError> {
    scenario.validate()?;
    if scenario.checkpoint_interval.is_none() && scenario.resume_from.is_none() {
        return Ok(scenario.to_sweep()?.run()?);
    }
    run_checkpointed(scenario, file)
}

/// [`run_sweep`] plus the standard report rendering — the checkpoint-aware
/// equivalent of [`crate::run_scenario`].
pub fn run_report(scenario: &Scenario, file: Option<&str>) -> Result<String, CheckpointError> {
    let grid = run_sweep(scenario, file)?;
    Ok(render_report(scenario, &grid)?)
}

fn run_checkpointed(scenario: &Scenario, file: Option<&str>) -> Result<SweepGrid, CheckpointError> {
    let workloads = scenario.resolve_workloads()?;
    let labels: Vec<String> = scenario.variants.iter().map(|(l, _)| l.clone()).collect();
    let mut configs: Vec<CoreConfig> = Vec::with_capacity(scenario.variants.len());
    for (label, spec) in &scenario.variants {
        configs.push(spec.to_config().map_err(|e| ScenarioError::InVariant {
            label: label.clone(),
            source: Box::new(e),
        })?);
    }
    let window = scenario.options.window();
    let digest = scenario_digest(scenario);
    let total = workloads.len() * labels.len();

    let default_path;
    let path: &str = match (file, scenario.resume_from.as_deref()) {
        (Some(p), _) => p,
        (None, Some(p)) => p,
        (None, None) => {
            default_path = default_checkpoint_path(scenario);
            &default_path
        }
    };

    let mut interval = scenario.checkpoint_interval;
    let mut done: Vec<(String, SimStats)> = Vec::new();
    let mut in_progress: Option<(Option<SimStats>, Vec<u8>)> = None;
    if let Some(resume) = scenario.resume_from.as_deref() {
        let image = load_image(resume, digest)?;
        interval = interval.or(Some(image.interval));
        done = image.completed;
        in_progress = image.in_progress;
        if done.len() > total || (done.len() == total && in_progress.is_some()) {
            return Err(CheckpointError::Invalid(format!(
                "{} completed cells recorded, sweep has {total}",
                done.len()
            )));
        }
        for (i, (name, _)) in done.iter().enumerate() {
            let expected = &workloads[i / labels.len()].name;
            if name != expected {
                return Err(CheckpointError::Invalid(format!(
                    "cell {i} records workload {name:?}, scenario has {expected:?}"
                )));
            }
        }
    }
    // A fresh run reaches here only with `checkpoint_interval` set, and a
    // resumed image records the (non-zero) interval it was written with.
    let every = interval.expect("checkpointed run without an interval");

    let mut programs: Vec<Option<Program>> = workloads.iter().map(|_| None).collect();

    while done.len() < total {
        let i = done.len();
        let (w, v) = (i / labels.len(), i % labels.len());
        let program = &*programs[w].get_or_insert_with(|| workloads[w].build());
        let name = workloads[w].name.clone();
        let cfg = configs[v].clone();

        let (mut sim, mut warm) = match in_progress.take() {
            Some((warm, machine)) => (Simulator::resume_from(program, cfg, &machine)?, warm),
            None => (Simulator::new(program, cfg), None),
        };

        // Warmup phase. The commit budget is absolute, so resuming at
        // `committed` µ-ops and running the remainder reproduces the
        // uninterrupted run exactly.
        if warm.is_none() {
            let committed = sim.stats().committed;
            let warm_stats = sim.run_with_checkpoints(window.warmup - committed, every, |s| {
                let _ = write_image(
                    path,
                    digest,
                    &Image {
                        interval: every,
                        completed: done.clone(),
                        in_progress: Some((None, s.save_snapshot())),
                    },
                );
            });
            warm = Some(warm_stats);
        }
        let warm_stats = warm.expect("warmup stats recorded");

        // Measure phase, against the absolute warmup+measure target.
        let committed = sim.stats().committed;
        let target = window.warmup + window.measure;
        let end = sim.run_with_checkpoints(target - committed, every, |s| {
            let _ = write_image(
                path,
                digest,
                &Image {
                    interval: every,
                    completed: done.clone(),
                    in_progress: Some((Some(warm_stats), s.save_snapshot())),
                },
            );
        });
        done.push((name, end.delta_since(&warm_stats)));

        // A cell boundary is always durable, even with a huge interval.
        write_image(
            path,
            digest,
            &Image {
                interval: every,
                completed: done.clone(),
                in_progress: None,
            },
        )?;
    }

    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(io_err(path, e)),
    }

    let cells = done
        .into_iter()
        .map(|(name, stats)| Measurement { name, stats })
        .collect();
    Ok(SweepGrid::from_parts(workloads, labels, cells)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::RunOptions;
    use crate::scenario::VariantSpec;

    fn tiny(name: &str) -> Scenario {
        Scenario::builder(name)
            .options(RunOptions::default().warmup(500).measure(1_500).jobs(2))
            .workloads(&["crafty", "hmmer"])
            .variant("base", VariantSpec::hpca16())
            .variant("both", VariantSpec::preset("me_smb"))
            .build()
            .unwrap()
    }

    fn tmp_path(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("regshare-ckpt-{}-{tag}.ckpt", std::process::id()))
            .to_str()
            .unwrap()
            .to_string()
    }

    fn assert_same_grid(a: &SweepGrid, b: &SweepGrid) {
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.workloads().len(), b.workloads().len());
        for w in 0..a.workloads().len() {
            for label in a.labels() {
                assert_eq!(
                    a.get(w, label).unwrap().stats,
                    b.get(w, label).unwrap().stats,
                    "{label}/{w}"
                );
            }
        }
    }

    #[test]
    fn checkpointed_run_matches_the_parallel_engine_and_cleans_up() {
        let plain = tiny("ckpt_eq");
        let reference = plain.to_sweep().unwrap().run().unwrap();

        let mut s = plain.clone();
        // A short interval fires the writer many times per cell; the
        // observational hook must not perturb a single statistic.
        s.checkpoint_interval = Some(100);
        let path = tmp_path("eq");
        let grid = run_sweep(&s, Some(&path)).unwrap();
        assert_same_grid(&grid, &reference);
        assert!(
            !std::path::Path::new(&path).exists(),
            "image not deleted after success"
        );
        // Reports are byte-identical too (the end-to-end CI contract).
        assert_eq!(
            run_report(&s, Some(&path)).unwrap(),
            render_report(&plain, &reference).unwrap()
        );
    }

    #[test]
    fn resume_mid_cell_reproduces_the_uninterrupted_grid() {
        let plain = tiny("ckpt_resume");
        let reference = plain.to_sweep().unwrap().run().unwrap();
        let digest = scenario_digest(&plain);
        let window = plain.options.window();

        // Hand-craft the image a killed run would have left behind:
        // cell 0 finished, cell 1 (crafty/both) killed mid-measure.
        let program = regshare_workloads::try_by_names(&["crafty".to_string()]).unwrap()[0].build();
        let base_cfg = plain.variants[0].1.to_config().unwrap();
        let both_cfg = plain.variants[1].1.to_config().unwrap();

        let mut sim = Simulator::new(&program, base_cfg);
        let warm = sim.run(window.warmup);
        let end = sim.run(window.measure);
        let cell0 = ("crafty".to_string(), end.delta_since(&warm));

        let mut sim = Simulator::new(&program, both_cfg);
        let warm1 = sim.run(window.warmup);
        sim.run(700); // mid-measure
        let image = Image {
            interval: 250,
            completed: vec![cell0],
            in_progress: Some((Some(warm1), sim.save_snapshot())),
        };
        let path = tmp_path("resume");
        write_image(&path, digest, &image).unwrap();

        let mut s = plain.clone();
        s.resume_from = Some(path.clone());
        let grid = run_sweep(&s, None).unwrap();
        assert_same_grid(&grid, &reference);
        assert!(!std::path::Path::new(&path).exists());
    }

    #[test]
    fn foreign_or_broken_images_fail_with_typed_errors() {
        let s = tiny("ckpt_err");
        let digest = scenario_digest(&s);
        let empty = Image {
            interval: 100,
            completed: Vec::new(),
            in_progress: None,
        };

        // Missing file.
        let mut missing = s.clone();
        missing.resume_from = Some(tmp_path("nonexistent"));
        assert!(matches!(
            run_sweep(&missing, None).unwrap_err(),
            CheckpointError::Missing { .. }
        ));

        // Same scenario, different window → different digest, refused.
        let path = tmp_path("foreign");
        let mut other = s.clone();
        other.options = RunOptions::default().warmup(600).measure(1_500);
        write_image(&path, scenario_digest(&other), &empty).unwrap();
        let mut resumed = s.clone();
        resumed.resume_from = Some(path.clone());
        assert!(matches!(
            run_sweep(&resumed, None).unwrap_err(),
            CheckpointError::Snapshot(SnapError::ConfigDigestMismatch { .. })
        ));

        // ...but jobs / checkpoint plumbing do NOT change the digest.
        let mut replumbed = s.clone();
        replumbed.options.jobs = Some(7);
        replumbed.checkpoint_interval = Some(9);
        replumbed.resume_from = Some("elsewhere.ckpt".into());
        assert_eq!(scenario_digest(&replumbed), digest);

        // Truncated image → typed decode error.
        let bytes = encode_image(digest, &empty);
        for cut in [3, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_image(&bytes[..cut], digest).is_err(), "cut {cut}");
        }

        // More completed cells than the sweep has.
        let fat = Image {
            interval: 100,
            completed: (0..5)
                .map(|_| ("crafty".to_string(), SimStats::default()))
                .collect(),
            in_progress: None,
        };
        write_image(&path, digest, &fat).unwrap();
        assert!(matches!(
            run_sweep(&resumed, None).unwrap_err(),
            CheckpointError::Invalid(_)
        ));

        // A recorded cell naming the wrong workload.
        let misnamed = Image {
            interval: 100,
            completed: vec![("hmmer".to_string(), SimStats::default())],
            in_progress: None,
        };
        write_image(&path, digest, &misnamed).unwrap();
        assert!(matches!(
            run_sweep(&resumed, None).unwrap_err(),
            CheckpointError::Invalid(_)
        ));
        std::fs::remove_file(&path).unwrap();
    }
}

//! The cache-aware scheduling engine behind the daemon.
//!
//! [`Engine::submit`] takes a parsed [`Scenario`] and produces the same
//! report the batch binaries print — but per (workload × configuration ×
//! window) **cell** rather than per run:
//!
//! 1. the request is normalized (checkpoint plumbing cleared, run options
//!    pinned over the once-per-process environment snapshot) and
//!    validated with the scenario layer's typed errors;
//! 2. every cell is content-addressed with
//!    [`regshare_bench::cell_digest`] and looked up in the persistent
//!    [`Cache`];
//! 3. misses are **coalesced** against the in-flight table — two
//!    concurrent requests needing the same cell trigger exactly one
//!    simulation — and scheduled onto the worker pool under admission
//!    control: when the number of queued-plus-running cells would exceed
//!    the cap, the request is rejected with the typed, retriable
//!    [`ServeError::Busy`] instead of growing the queue without bound;
//! 4. the request waits for its cells under a deadline
//!    ([`ServeError::Timeout`] on expiry — the cells keep computing and
//!    warm the cache for the retry), then merges everything in spec
//!    order and renders the body.
//!
//! Because the sweep engine is deterministic, a cache hit and a fresh
//! computation yield byte-identical stats, so the rendered table is
//! byte-identical whether the request was served cold, warm, or half-and-
//! half — provenance is reported *next to* the body, never inside it.

use crate::cache::{Cache, CacheError};
use regshare_bench::digest::cell_digest;
use regshare_bench::harness::{measure_program, Measurement, RunWindow};
use regshare_bench::report::render_report;
use regshare_bench::scenario::{Scenario, ScenarioError};
use regshare_bench::sweep::{panic_detail, SweepError, SweepGrid};
use regshare_bench::RunOptions;
use regshare_core::{CoreConfig, SimStats};
use regshare_isa::Program;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Any way a request can fail. Everything is typed: the protocol layer
/// maps each variant to a wire error kind, and `Busy`/`Timeout` are
/// explicitly retriable.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The submitted scenario is invalid (unknown names, bad config...).
    Scenario(ScenarioError),
    /// The cache directory could not be opened or written.
    Cache(CacheError),
    /// Admission control: the job queue is full. Admission is checked
    /// per *cell*, so a partially-admitted request's earlier cells keep
    /// computing and warm the cache — a retry makes progress. Retriable.
    Busy {
        /// Cells queued or running when the request was rejected.
        pending: usize,
        /// The configured cap.
        max: usize,
    },
    /// The request's cells did not all finish within the deadline. The
    /// computations keep running and warm the cache, so a retry makes
    /// progress. Retriable.
    Timeout {
        /// The configured per-request deadline.
        ms: u64,
    },
    /// One cell's simulation died (a panic, caught so the daemon keeps
    /// serving). Failures are **not** cached, so a retry recomputes the
    /// cell — but an unchanged request will fail the same way.
    Cell {
        /// The workload whose cell failed.
        workload: String,
        /// The variant label of the failed cell.
        label: String,
        /// The panic payload, if it was a string.
        detail: String,
    },
    /// The completed cells could not be merged into a grid or rendered
    /// (a sweep-layer shape or label error — indicates an engine bug).
    Grid(SweepError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Scenario(e) => write!(f, "{e}"),
            ServeError::Cache(e) => write!(f, "{e}"),
            ServeError::Busy { pending, max } => write!(
                f,
                "server is at capacity ({pending}/{max} cells in flight); retry later"
            ),
            ServeError::Timeout { ms } => write!(
                f,
                "request exceeded the {ms} ms deadline; the cells keep \
                 computing — retry to pick them up from the cache"
            ),
            ServeError::Cell {
                workload,
                label,
                detail,
            } => write!(f, "cell {workload}/{label} failed: {detail}"),
            ServeError::Grid(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Scenario(e) => Some(e),
            ServeError::Cache(e) => Some(e),
            ServeError::Grid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScenarioError> for ServeError {
    fn from(e: ScenarioError) -> ServeError {
        ServeError::Scenario(e)
    }
}

impl From<CacheError> for ServeError {
    fn from(e: CacheError) -> ServeError {
        ServeError::Cache(e)
    }
}

impl From<SweepError> for ServeError {
    fn from(e: SweepError) -> ServeError {
        ServeError::Grid(e)
    }
}

/// Response body format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// The standard report (byte-identical to the batch binaries).
    Table,
    /// A JSON document with per-cell provenance.
    Json,
}

/// A served result: the rendered body plus per-request provenance.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// Rendered report (table) or JSON document.
    pub body: String,
    /// Cells in the request's matrix.
    pub cells: usize,
    /// Cells served from the persistent cache.
    pub cached: usize,
    /// Cells this request had to wait on a simulation for (fresh or
    /// coalesced onto another request's in-flight computation).
    pub computed: usize,
}

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Cache directory (created if missing).
    pub cache_dir: String,
    /// Byte cap for the cache; `None` = unbounded.
    pub cache_max_bytes: Option<u64>,
    /// Worker threads; 0 = available parallelism.
    pub workers: usize,
    /// Admission cap: maximum queued-plus-running cells.
    pub max_pending: usize,
    /// Per-request deadline in milliseconds.
    pub timeout_ms: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cache_dir: ".regshare-cache".to_string(),
            cache_max_bytes: None,
            workers: 0,
            max_pending: 1024,
            timeout_ms: 120_000,
        }
    }
}

/// One cell's rendezvous between the worker that computes it and every
/// request waiting on it. The payload is an *outcome*: `Err` carries the
/// rendered panic detail of a cell whose simulation died, so waiters get
/// a typed error instead of hanging until their deadline.
struct Slot {
    outcome: Mutex<Option<Result<SimStats, String>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, outcome: Result<SimStats, String>) {
        *self.outcome.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
        self.ready.notify_all();
    }

    /// `None` on deadline expiry; otherwise the cell's outcome.
    fn wait_until(&self, deadline: Instant) -> Option<Result<SimStats, String>> {
        let mut guard = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = guard.as_ref() {
                return Some(outcome.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .ready
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }
}

/// One unit of work for the pool.
struct Job {
    key: u64,
    workload: String,
    program: Arc<Program>,
    cfg: CoreConfig,
    window: RunWindow,
    slot: Arc<Slot>,
}

/// State shared between the engine front and the worker threads.
struct Shared {
    cache: Cache,
    /// Cells currently queued or computing, keyed by content address.
    inflight: Mutex<HashMap<u64, Arc<Slot>>>,
    /// Queued-plus-running cell count (admission control).
    pending: AtomicUsize,
    /// Cells actually simulated since engine start — THE exactly-once
    /// witness: a warm request leaves it untouched.
    computed: AtomicU64,
    /// Cells served from the persistent cache since engine start.
    hits: AtomicU64,
    /// Requests accepted (valid scenarios) since engine start.
    requests: AtomicU64,
}

impl Shared {
    fn run_job(&self, job: Job) {
        let Job {
            key,
            workload,
            program,
            cfg,
            window,
            slot,
        } = job;
        // A panicking simulation must not take the worker thread (and with
        // it the daemon's capacity) down: catch it, publish the detail to
        // every waiter, and keep serving.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            measure_program(workload.clone(), &program, cfg, window)
        }))
        .map_err(panic_detail);
        let outcome = match outcome {
            Ok(m) => {
                self.computed.fetch_add(1, Ordering::Relaxed);
                // Persist before publishing: once the slot is filled and
                // the in-flight entry removed, later lookups must find the
                // cache hit. Failures are NOT persisted — a retry gets a
                // fresh computation, not a replayed panic.
                if let Err(e) = self.cache.store(key, &workload, &m.stats) {
                    eprintln!("serve: cache store failed (serving from memory): {e}");
                }
                Ok(m.stats)
            }
            Err(detail) => Err(detail),
        };
        slot.fill(outcome);
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
        self.pending.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The persistent, cache-aware scheduler. Cheap to share (`Arc`) across
/// connection threads; dropping it drains the worker pool.
pub struct Engine {
    shared: Arc<Shared>,
    /// Senders are cloned per enqueue; `None` after shutdown.
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    timeout: Duration,
    max_pending: usize,
    /// The deprecated environment fallbacks, pinned at engine start and
    /// threaded through every request's [`RunOptions`].
    env_baseline: RunOptions,
}

impl Engine {
    /// Opens the cache and starts the worker pool.
    pub fn new(config: EngineConfig) -> Result<Engine, ServeError> {
        let cache = Cache::open(&config.cache_dir, config.cache_max_bytes)?;
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let shared = Arc::new(Shared {
            cache,
            inflight: Mutex::new(HashMap::new()),
            pending: AtomicUsize::new(0),
            computed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || loop {
                let job = {
                    let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                    guard.recv()
                };
                match job {
                    Ok(job) => shared.run_job(job),
                    Err(_) => break, // engine dropped
                }
            }));
        }
        Ok(Engine {
            shared,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            timeout: Duration::from_millis(config.timeout_ms),
            max_pending: config.max_pending,
            env_baseline: regshare_bench::env_fallbacks(),
        })
    }

    /// Cells actually simulated since engine start. A request served
    /// entirely from the persistent cache leaves this unchanged — the
    /// acceptance witness for warm serving.
    pub fn computed_cells(&self) -> u64 {
        self.shared.computed.load(Ordering::Relaxed)
    }

    /// Cells served from the persistent cache since engine start.
    pub fn cache_hits(&self) -> u64 {
        self.shared.hits.load(Ordering::Relaxed)
    }

    /// Requests accepted (validated) since engine start.
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// The cache this engine serves from.
    pub fn cache(&self) -> &Cache {
        &self.shared.cache
    }

    /// Normalizes a request: the daemon owns parallelism and checkpoint
    /// plumbing (those keys are cleared), and unset run options resolve
    /// against the environment snapshot taken at engine start.
    fn normalize(&self, scenario: &Scenario) -> Scenario {
        let mut s = scenario.clone();
        s.options = s.options.over(self.env_baseline);
        s.checkpoint_interval = None;
        s.resume_from = None;
        s
    }

    /// Serves one request. See the module docs for the full pipeline.
    pub fn submit(&self, scenario: &Scenario, format: Format) -> Result<ServeResponse, ServeError> {
        let s = self.normalize(scenario);
        s.validate()?;
        let workloads = s.resolve_workloads()?;
        let mut configs: Vec<CoreConfig> = Vec::with_capacity(s.variants.len());
        for (label, spec) in &s.variants {
            configs.push(spec.to_config().map_err(|e| ScenarioError::InVariant {
                label: label.clone(),
                source: Box::new(e),
            })?);
        }
        self.shared.requests.fetch_add(1, Ordering::Relaxed);

        let window = s.options.window();
        let nv = configs.len();
        let n = workloads.len() * nv;
        let label_of = |i: usize| s.variants[i % nv].0.clone();
        let mut stats: Vec<Option<SimStats>> = vec![None; n];
        let mut from_cache = vec![false; n];
        // Duplicate keys inside one request (two labels resolving to the
        // same machine) share one resolution.
        let mut first_of_key: HashMap<u64, usize> = HashMap::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        let mut waits: Vec<(usize, Arc<Slot>)> = Vec::new();
        // Programs are built at most once per workload per request, and
        // only when some cell of that workload actually misses.
        let mut programs: Vec<Option<Arc<Program>>> = vec![None; workloads.len()];

        for i in 0..n {
            let (w, v) = (i / nv, i % nv);
            let name = &workloads[w].name;
            let key = cell_digest(name, &configs[v], window);
            if let Some(&j) = first_of_key.get(&key) {
                dups.push((i, j));
                continue;
            }
            first_of_key.insert(key, i);

            match self.shared.cache.load(key, name) {
                Ok(Some(hit)) => {
                    stats[i] = Some(hit);
                    from_cache[i] = true;
                    self.shared.hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Ok(None) => {}
                Err(e) => {
                    // A damaged entry is recomputed, not served wrong and
                    // not fatal to the request.
                    eprintln!("serve: discarding bad cache entry {key:016x}: {e}");
                    let _ = std::fs::remove_file(self.shared.cache.entry_path(key));
                }
            }

            // Build (or reuse) the program before taking the in-flight
            // lock; on the rare attach the build is wasted, never wrong.
            // A panicking build (a broken generator) is a typed per-cell
            // failure, not a dead connection thread.
            let program = match &programs[w] {
                Some(p) => Arc::clone(p),
                None => {
                    match catch_unwind(AssertUnwindSafe(|| Arc::new(workloads[w].build())))
                        .map_err(panic_detail)
                    {
                        Ok(p) => {
                            programs[w] = Some(Arc::clone(&p));
                            p
                        }
                        Err(detail) => {
                            return Err(ServeError::Cell {
                                workload: workloads[w].name.clone(),
                                label: label_of(i),
                                detail,
                            })
                        }
                    }
                }
            };

            let slot = {
                let mut inflight = self
                    .shared
                    .inflight
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if let Some(slot) = inflight.get(&key) {
                    // Coalesce onto the computation already in flight.
                    Arc::clone(slot)
                } else if let Ok(Some(hit)) = self.shared.cache.load(key, name) {
                    // The cell completed between our miss and this lock
                    // (successful workers persist before unpublishing). A
                    // vanished in-flight entry with no cache hit was a
                    // *failed* cell — fall through and recompute it.
                    stats[i] = Some(hit);
                    from_cache[i] = true;
                    self.shared.hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                } else {
                    let pending = self.shared.pending.load(Ordering::Relaxed);
                    if pending >= self.max_pending {
                        return Err(ServeError::Busy {
                            pending,
                            max: self.max_pending,
                        });
                    }
                    self.shared.pending.fetch_add(1, Ordering::Relaxed);
                    let slot = Arc::new(Slot::new());
                    inflight.insert(key, Arc::clone(&slot));
                    let tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(tx) = tx.as_ref() {
                        let _ = tx.send(Job {
                            key,
                            workload: name.clone(),
                            program,
                            cfg: configs[v].clone(),
                            window,
                            slot: Arc::clone(&slot),
                        });
                    }
                    slot
                }
            };
            waits.push((i, slot));
        }

        // Wait for every miss under one request-wide deadline. A cell
        // whose simulation died surfaces as a typed per-cell failure —
        // the daemon degrades to an error reply and keeps serving.
        let deadline = Instant::now() + self.timeout;
        for (i, slot) in waits {
            match slot.wait_until(deadline) {
                Some(Ok(computed)) => stats[i] = Some(computed),
                Some(Err(detail)) => {
                    return Err(ServeError::Cell {
                        workload: workloads[i / nv].name.clone(),
                        label: label_of(i),
                        detail,
                    })
                }
                None => {
                    return Err(ServeError::Timeout {
                        ms: self.timeout.as_millis() as u64,
                    })
                }
            }
        }
        for (i, j) in dups {
            stats[i] = stats[j];
            from_cache[i] = from_cache[j];
        }

        let cached = from_cache.iter().filter(|&&c| c).count();
        let mut cells: Vec<Measurement> = Vec::with_capacity(n);
        for (i, st) in stats.into_iter().enumerate() {
            match st {
                Some(stats) => cells.push(Measurement {
                    name: workloads[i / nv].name.clone(),
                    stats,
                }),
                // Unreachable by construction (every non-dup cell is a hit
                // or a wait, and dups copy) — but a hole in the matrix is
                // an error reply, never a dead connection thread.
                None => {
                    return Err(ServeError::Cell {
                        workload: workloads[i / nv].name.clone(),
                        label: label_of(i),
                        detail: "cell was never scheduled or resolved".to_string(),
                    })
                }
            }
        }
        let labels: Vec<String> = s.variants.iter().map(|(l, _)| l.clone()).collect();
        let grid = SweepGrid::from_parts(workloads, labels, cells)?;
        let body = match format {
            Format::Table => render_report(&s, &grid)?,
            Format::Json => json_report(&s, &grid, &from_cache)?,
        };
        Ok(ServeResponse {
            body,
            cells: n,
            cached,
            computed: n - cached,
        })
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Close the queue, then drain the pool: in-flight cells finish
        // (and land in the cache) before the engine disappears.
        *self.tx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Renders the JSON body: scenario identity, resolved window, and one
/// object per cell with IPC, raw cycle/µ-op counts and `cached`
/// provenance. Hand-rolled like `BENCH_*.json` — the workspace is
/// dependency-free. Scenario names/notes need no escaping: validation
/// already rejects quotes, backslashes and control characters. A grid
/// missing a label is a typed [`SweepError`], not a panic.
fn json_report(
    scenario: &Scenario,
    grid: &SweepGrid,
    from_cache: &[bool],
) -> Result<String, SweepError> {
    let window = scenario.options.window();
    let labels = grid.labels();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", scenario.name));
    if !scenario.note.is_empty() {
        out.push_str(&format!("  \"note\": \"{}\",\n", scenario.note));
    }
    out.push_str(&format!(
        "  \"window\": {{ \"warmup\": {}, \"measure\": {} }},\n",
        window.warmup, window.measure
    ));
    out.push_str(&format!(
        "  \"variants\": [{}],\n",
        labels
            .iter()
            .map(|l| format!("\"{l}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"cells\": [\n");
    let nv = labels.len();
    let mut first = true;
    for (w, row) in grid.rows().enumerate() {
        for (v, label) in labels.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let m = row.get(label)?;
            out.push_str(&format!(
                "    {{ \"workload\": \"{}\", \"variant\": \"{label}\", \
                 \"ipc\": {:.6}, \"cycles\": {}, \"committed\": {}, \
                 \"cached\": {} }}",
                row.workload().name,
                m.ipc(),
                m.stats.cycles,
                m.stats.committed,
                from_cache[w * nv + v]
            ));
        }
    }
    out.push_str("\n  ]\n}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_bench::VariantSpec;
    use std::path::PathBuf;

    /// A cache rooted inside `target/tmp` (unique per test, wiped on entry).
    fn tmp_cache(name: &str) -> Cache {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("engine-unit-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Cache::open(&dir, None).expect("cache opens")
    }

    #[test]
    fn slot_failure_reaches_every_waiter() {
        let slot = Arc::new(Slot::new());
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait_until(Instant::now() + Duration::from_secs(30)))
        };
        slot.fill(Err("simulated cell death".to_string()));
        assert_eq!(
            waiter.join().unwrap(),
            Some(Err("simulated cell death".to_string()))
        );
    }

    #[test]
    fn panicking_job_publishes_a_failure_and_releases_capacity() {
        let shared = Shared {
            cache: tmp_cache("panicking-job"),
            inflight: Mutex::new(HashMap::new()),
            pending: AtomicUsize::new(1),
            computed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        };
        let program = Arc::new(
            regshare_isa::asm::assemble("    li r15, 1\n    halt\n").expect("tiny program"),
        );
        // A PRF smaller than the architectural register file trips rename's
        // internal assert — exactly the class of simulator bug the worker
        // must survive. (The scenario layer can never produce this config;
        // the test bypasses validation on purpose.)
        let mut cfg = VariantSpec::hpca16().to_config().expect("valid preset");
        cfg.pregs_per_class = 1;
        let key = 0xdead_beef_u64;
        let slot = Arc::new(Slot::new());
        shared
            .inflight
            .lock()
            .unwrap()
            .insert(key, Arc::clone(&slot));

        shared.run_job(Job {
            key,
            workload: "tiny".to_string(),
            program,
            cfg,
            window: RunWindow {
                warmup: 10,
                measure: 50,
            },
            slot: Arc::clone(&slot),
        });

        // The slot carries the panic detail, not a hang or an abort...
        let outcome = slot.wait_until(Instant::now()).expect("slot filled");
        let detail = outcome.expect_err("job must have failed");
        assert!(!detail.is_empty(), "panic detail rendered");
        // ...capacity is released and the in-flight entry unpublished...
        assert_eq!(shared.pending.load(Ordering::Relaxed), 0);
        assert!(shared.inflight.lock().unwrap().is_empty());
        assert_eq!(shared.computed.load(Ordering::Relaxed), 0);
        // ...and the failure was NOT cached: a retry recomputes.
        assert_eq!(shared.cache.load(key, "tiny").unwrap(), None);
    }

    #[test]
    fn error_display_names_the_failed_cell() {
        let e = ServeError::Cell {
            workload: "asm-matmul".to_string(),
            label: "both".to_string(),
            detail: "index out of bounds".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "cell asm-matmul/both failed: index out of bounds"
        );
        let g = ServeError::Grid(SweepError::Shape {
            expected: 4,
            got: 3,
        });
        assert_eq!(
            g.to_string(),
            "grid shape mismatch: expected 4 cells, got 3"
        );
    }
}

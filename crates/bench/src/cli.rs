//! Shared command-line front door for the experiment binaries.
//!
//! Every binary (`smoke`, `paper_report`) understands the same flags:
//!
//! ```text
//! --scenario <file>   run a .scenario file instead of the built-in preset
//! --preset <name>     run a named built-in scenario (see --list-presets)
//! --warmup <uops>     override the warmup window
//! --measure <uops>    override the measured window
//! --jobs <n>          override the sweep worker count
//! --checkpoint-every <uops>  write a resumable checkpoint every N µ-ops
//! --checkpoint-file <path>   where to write it (default <scenario>.ckpt)
//! --resume <file>     continue a checkpointed run from its image
//! --list-presets      list the built-in scenarios and exit
//! --list-workloads    list the workload registry and exit
//! --help              usage
//! ```
//!
//! Flag > scenario file > deprecated `REGSHARE_*` env var > default, in
//! that order (see [`crate::options`]).

use crate::options::RunOptions;
use crate::scenario::{preset, Scenario, ScenarioError, SCENARIO_PRESETS};

/// Parsed command line for a scenario-driven binary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CliArgs {
    /// `--scenario <file>`.
    pub scenario_path: Option<String>,
    /// `--preset <name>`.
    pub preset: Option<String>,
    /// `--warmup` / `--measure` / `--jobs` overrides.
    pub overrides: RunOptions,
    /// `--checkpoint-every <uops>`: write a resumable checkpoint every N
    /// committed µ-ops (see [`crate::checkpoint`]).
    pub checkpoint_every: Option<u64>,
    /// `--checkpoint-file <path>`: where checkpoints are written.
    pub checkpoint_file: Option<String>,
    /// `--resume <file>`: continue from a checkpoint image.
    pub resume: Option<String>,
    /// `--list-presets`.
    pub list_presets: bool,
    /// `--list-workloads`.
    pub list_workloads: bool,
    /// `--help`.
    pub help: bool,
}

impl CliArgs {
    /// Parses raw arguments (without the binary name). Unknown flags and
    /// malformed values return a message for stderr.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<CliArgs, String> {
        let args: Vec<String> = args.collect();
        let mut out = CliArgs::default();
        let mut i = 0;
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--scenario" => out.scenario_path = Some(value(&mut i)?),
                "--preset" => out.preset = Some(value(&mut i)?),
                "--warmup" => {
                    let v = value(&mut i)?;
                    out.overrides.warmup =
                        Some(v.parse().map_err(|_| format!("bad --warmup value {v:?}"))?);
                }
                "--measure" => {
                    let v = value(&mut i)?;
                    out.overrides.measure = Some(
                        v.parse()
                            .map_err(|_| format!("bad --measure value {v:?}"))?,
                    );
                }
                "--jobs" => {
                    let v = value(&mut i)?;
                    let n: usize = v.parse().map_err(|_| format!("bad --jobs value {v:?}"))?;
                    // Same typed rejection as scenario files and RunOptions.
                    out.overrides = out
                        .overrides
                        .try_jobs(n)
                        .map_err(|e| format!("--jobs: {e}"))?;
                }
                "--checkpoint-every" => {
                    let v = value(&mut i)?;
                    let n: u64 = v
                        .parse()
                        .map_err(|_| format!("bad --checkpoint-every value {v:?}"))?;
                    if n == 0 {
                        // Same boundary rejection as the scenario key.
                        return Err("--checkpoint-every must be at least 1".to_string());
                    }
                    out.checkpoint_every = Some(n);
                }
                "--checkpoint-file" => out.checkpoint_file = Some(value(&mut i)?),
                "--resume" => out.resume = Some(value(&mut i)?),
                "--list-presets" => out.list_presets = true,
                "--list-workloads" => out.list_workloads = true,
                "--help" | "-h" => out.help = true,
                other => return Err(format!("unknown flag {other:?} (try --help)")),
            }
            i += 1;
        }
        if out.scenario_path.is_some() && out.preset.is_some() {
            return Err("--scenario and --preset are mutually exclusive".to_string());
        }
        Ok(out)
    }

    /// Resolves the scenario to run: `--scenario` file, `--preset` name, or
    /// the binary's default preset — with the CLI's window/jobs overrides
    /// already applied on top.
    pub fn resolve_scenario(&self, default_preset: &str) -> Result<Scenario, ScenarioError> {
        let mut scenario = if let Some(path) = &self.scenario_path {
            Scenario::load(path)?
        } else {
            let name = self.preset.as_deref().unwrap_or(default_preset);
            preset(name).ok_or_else(|| ScenarioError::UnknownPreset(name.to_string()))?
        };
        scenario.options = self.overrides.over(scenario.options);
        if self.checkpoint_every.is_some() {
            scenario.checkpoint_interval = self.checkpoint_every;
        }
        if self.resume.is_some() {
            scenario.resume_from = self.resume.clone();
        }
        Ok(scenario)
    }
}

/// The `--list-presets` listing (stable output: name, tab, description).
pub fn preset_listing() -> String {
    let mut out = String::from("built-in scenarios (run with --preset <name>):\n");
    for (name, desc) in SCENARIO_PRESETS {
        out.push_str(&format!("  {name:<16} {desc}\n"));
    }
    out
}

/// The `--list-workloads` listing: the suite registry, in suite order,
/// plus the fuzz generator's naming scheme — everything a scenario file's
/// `workloads = [...]` may reference.
pub fn workload_listing() -> String {
    let mut out = String::from("workload registry (scenario `workloads = [...]` names):\n");
    for name in regshare_workloads::names() {
        out.push_str(&format!("  {name}\n"));
    }
    out.push_str(
        "generated workloads: fuzz-<profile>-<seed> (see README \"Fuzzing\"); profiles:\n",
    );
    for p in regshare_workloads::fuzz::profiles() {
        out.push_str(&format!("  {:<10} {}\n", p.name, p.description));
    }
    out
}

/// The shared usage text.
pub fn usage(bin: &str, default_preset: &str) -> String {
    format!(
        "usage: {bin} [--scenario <file> | --preset <name>] \
         [--warmup <uops>] [--measure <uops>] [--jobs <n>] \
         [--checkpoint-every <uops>] [--checkpoint-file <path>] \
         [--resume <file>] [--list-presets] [--list-workloads]\n\
         default: --preset {default_preset}\n\
         REGSHARE_WARMUP / REGSHARE_MEASURE / REGSHARE_JOBS env vars are \
         deprecated fallbacks for the flags above."
    )
}

/// The whole shared binary prologue: parses `std::env::args`, prints
/// usage / listings and exits for the informational flags and for errors,
/// and otherwise returns the resolved scenario (overrides applied).
/// `smoke` and `paper_report` differ only in what they do with the
/// returned scenario.
pub fn run_front_door(bin: &str, default_preset: &str) -> (CliArgs, Scenario) {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{bin}: {msg}");
            eprintln!("{}", usage(bin, default_preset));
            std::process::exit(2);
        }
    };
    if args.help {
        println!("{}", usage(bin, default_preset));
        std::process::exit(0);
    }
    if args.list_presets {
        print!("{}", preset_listing());
        std::process::exit(0);
    }
    if args.list_workloads {
        print!("{}", workload_listing());
        std::process::exit(0);
    }
    match args.resolve_scenario(default_preset) {
        Ok(scenario) => (args, scenario),
        Err(e) => {
            eprintln!("{bin}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliArgs, String> {
        CliArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--scenario",
            "x.scenario",
            "--warmup",
            "100",
            "--measure",
            "200",
            "--jobs",
            "3",
        ])
        .unwrap();
        assert_eq!(a.scenario_path.as_deref(), Some("x.scenario"));
        assert_eq!(a.overrides.warmup, Some(100));
        assert_eq!(a.overrides.measure, Some(200));
        assert_eq!(a.overrides.jobs, Some(3));
        assert!(parse(&["--list-presets"]).unwrap().list_presets);
        assert!(parse(&["--help"]).unwrap().help);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--warmup"]).is_err());
        assert!(parse(&["--warmup", "lots"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--checkpoint-every", "0"]).is_err());
        assert!(parse(&["--checkpoint-every", "soon"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--scenario", "a", "--preset", "b"]).is_err());
    }

    #[test]
    fn checkpoint_flags_overlay_the_scenario() {
        let a = parse(&[
            "--preset",
            "smoke",
            "--checkpoint-every",
            "5000",
            "--checkpoint-file",
            "out.ckpt",
        ])
        .unwrap();
        assert_eq!(a.checkpoint_file.as_deref(), Some("out.ckpt"));
        let s = a.resolve_scenario("headline").unwrap();
        assert_eq!(s.checkpoint_interval, Some(5000));
        assert_eq!(s.resume_from, None);

        let a = parse(&["--preset", "smoke", "--resume", "out.ckpt"]).unwrap();
        let s = a.resolve_scenario("headline").unwrap();
        assert_eq!(s.checkpoint_interval, None);
        assert_eq!(s.resume_from.as_deref(), Some("out.ckpt"));
    }

    #[test]
    fn resolves_presets_and_applies_overrides() {
        let a = parse(&["--preset", "smoke", "--warmup", "42"]).unwrap();
        let s = a.resolve_scenario("headline").unwrap();
        assert_eq!(s.name, "smoke");
        assert_eq!(s.options.warmup, Some(42));

        let a = parse(&[]).unwrap();
        assert_eq!(a.resolve_scenario("headline").unwrap().name, "headline");

        let a = parse(&["--preset", "nope"]).unwrap();
        assert!(matches!(
            a.resolve_scenario("headline").unwrap_err(),
            ScenarioError::UnknownPreset(_)
        ));
    }

    #[test]
    fn listing_names_every_preset() {
        let listing = preset_listing();
        for (name, _) in SCENARIO_PRESETS {
            assert!(listing.contains(name));
        }
    }
}

//! `regshare-fuzz`: deterministic, seed-reproducible program generation.
//!
//! The motif suite ([`crate::profile`]) replays the *same* 36 programs every
//! run; this module turns "as many scenarios as you can imagine" into an
//! executable property. A [`FuzzSpec`] — a named [`FuzzProfile`] plus a
//! 64-bit seed — expands into a [`FuzzPlan`] (a list of blocks drawn from a
//! loop / call-chain / pointer-chase / branchy / spill motif grammar) and
//! then into a [`Program`] that is **valid by construction**:
//!
//! - every control-flow target is patched in range (checked again by
//!   [`Program::validated`] — generation goes through `try_build`);
//! - every memory access is 8-byte aligned, so any legal access size is
//!   aligned too;
//! - registers stay inside the ISA classes, with data-register pressure
//!   capped by the profile;
//! - calls and returns are structurally balanced, with chain depth capped
//!   below the oracle interpreter's architectural return-stack bound;
//! - the program never halts (an infinite outer loop), so any warmup /
//!   measure / differential window is satisfiable under any validated
//!   `CoreConfig`.
//!
//! Generation is a pure function of `(profile, seed)`: the same spec always
//! yields byte-identical programs, which is what makes a printed `--seed`
//! a complete reproducer. Each block is emitted from its own `salt`-seeded
//! RNG, so *removing* a block does not perturb the code of the survivors —
//! the property the differential harness's greedy shrinker
//! (`regshare_bench::fuzz`) relies on, with the surviving subset described
//! by a replayable [`ShrinkSpec`].

use crate::profile::{Workload, WorkloadClass, WorkloadSource};
use crate::rng::Xorshift;
use regshare_isa::op::{AluOp, Cond, MoveWidth, Op, Operand};
use regshare_isa::program::{Program, ProgramBuilder};
use regshare_types::ArchReg;

/// Hard cap on call-chain depth: the oracle interpreter bounds runaway
/// recursion by dropping the oldest of 64 return addresses, so staying well
/// below keeps every generated call/return pair architecturally balanced
/// while still overflowing any realistic RAS (Table 1 uses 32 entries).
pub const MAX_CALL_DEPTH: u32 = 40;

/// Upper bound on blocks per plan (block regions are laid out 16 MB apart
/// in a private address range, so this also bounds the memory footprint).
pub const MAX_BLOCKS: u32 = 24;

// Register conventions (matching the motif suite where it has them):
//   r1  per-block induction variable
//   r2  computed address
//   r3  outer loop counter, r7 inner loop counter
//   r4/r5 region base pointers
//   r6  call-glue scratch
//   r8..r14 integer data pool (profile-capped pressure)
//   r15 accumulator, seeded once and carried forever
//   f8..f15 FP data pool
fn r(i: usize) -> ArchReg {
    ArchReg::int(i)
}
fn f(i: usize) -> ArchReg {
    ArchReg::fp(i)
}

/// Weighted straight-line op mix of a profile. Weights are relative (a
/// weight of zero removes the kind entirely).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// 1-cycle integer ALU ops.
    pub alu: u32,
    /// Pipelined integer multiplies.
    pub mul: u32,
    /// Unpipelined integer divides (long latency).
    pub div: u32,
    /// FP add/mul/div mix.
    pub fp: u32,
    /// Eliminable 32/64-bit integer moves (ME candidates).
    pub mov: u32,
    /// 8/16-bit merge moves (ME must skip these).
    pub merge_mov: u32,
    /// FP-to-FP moves.
    pub fp_mov: u32,
    /// Loads from the block's region.
    pub load: u32,
    /// Stores to the block's region.
    pub store: u32,
}

impl OpMix {
    fn total(&self) -> u32 {
        self.alu
            + self.mul
            + self.div
            + self.fp
            + self.mov
            + self.merge_mov
            + self.fp_mov
            + self.load
            + self.store
    }
}

/// A named generation profile: op-mix weights, block-grammar weights, and
/// the register-pressure / memory-footprint / control-structure knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzProfile {
    /// Registry name (identifier charset; no `-`, which separates the
    /// fields of a `fuzz-<profile>-<seed>` workload name).
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
    /// Straight-line op mix.
    pub mix: OpMix,
    /// Relative weights of the block kinds
    /// `[straight, loop, branchy, chase, spill, call]`.
    pub block_weights: [u32; 6],
    /// Minimum blocks per program.
    pub min_blocks: u32,
    /// Maximum blocks per program (clamped to [`MAX_BLOCKS`]).
    pub max_blocks: u32,
    /// Maximum trip count of any generated loop.
    pub max_trips: u64,
    /// Integer data registers in play (clamped to 2..=7 → r8..r14); FP
    /// pressure uses the same count over f8.. .
    pub reg_pressure: usize,
    /// Memory footprint knob: distinct 8-byte slots per memory block.
    pub mem_slots: u64,
    /// Maximum call-chain depth (clamped to [`MAX_CALL_DEPTH`]).
    pub max_call_depth: u32,
    /// Taken-bias range (percent, inclusive) for data-dependent branches;
    /// a 50/50 low end makes squashes frequent.
    pub branch_bias: (u32, u32),
}

/// The built-in profile registry, in stable order.
pub fn profiles() -> Vec<FuzzProfile> {
    let base_mix = OpMix {
        alu: 40,
        mul: 4,
        div: 1,
        fp: 10,
        mov: 8,
        merge_mov: 2,
        fp_mov: 2,
        load: 12,
        store: 8,
    };
    vec![
        FuzzProfile {
            name: "balanced",
            description: "everything in moderation: the default differential diet",
            mix: base_mix,
            block_weights: [4, 4, 3, 2, 3, 2],
            min_blocks: 3,
            max_blocks: 10,
            max_trips: 12,
            reg_pressure: 5,
            mem_slots: 64,
            max_call_depth: 6,
            branch_bias: (55, 90),
        },
        FuzzProfile {
            name: "moves",
            description: "move-dense call glue: move elimination under stress",
            mix: OpMix {
                mov: 34,
                merge_mov: 10,
                fp_mov: 6,
                alu: 30,
                ..base_mix
            },
            block_weights: [5, 4, 2, 0, 1, 4],
            min_blocks: 3,
            max_blocks: 10,
            max_trips: 12,
            reg_pressure: 6,
            mem_slots: 16,
            max_call_depth: 8,
            branch_bias: (65, 95),
        },
        FuzzProfile {
            name: "memory",
            description: "spills, redundant reloads and chases: SMB/DDT under stress",
            mix: OpMix {
                load: 26,
                store: 16,
                alu: 30,
                ..base_mix
            },
            block_weights: [2, 3, 1, 4, 6, 0],
            min_blocks: 3,
            max_blocks: 12,
            max_trips: 14,
            reg_pressure: 5,
            mem_slots: 512,
            max_call_depth: 2,
            branch_bias: (60, 90),
        },
        FuzzProfile {
            name: "branchy",
            description: "coin-flip branches: recovery and checkpoint paths under stress",
            mix: base_mix,
            block_weights: [2, 3, 8, 1, 2, 1],
            min_blocks: 4,
            max_blocks: 12,
            max_trips: 16,
            reg_pressure: 4,
            mem_slots: 64,
            max_call_depth: 4,
            branch_bias: (50, 70),
        },
        FuzzProfile {
            name: "calls",
            description: "deep call chains: RAS overflow and fetch-snapshot recovery",
            mix: OpMix {
                mov: 16,
                alu: 34,
                ..base_mix
            },
            block_weights: [2, 2, 3, 0, 1, 8],
            min_blocks: 3,
            max_blocks: 10,
            max_trips: 10,
            reg_pressure: 4,
            mem_slots: 16,
            max_call_depth: MAX_CALL_DEPTH,
            branch_bias: (55, 85),
        },
        FuzzProfile {
            name: "pressure",
            description: "maximum live values in tiny loops: free list and trackers under stress",
            mix: OpMix {
                alu: 44,
                fp: 16,
                mov: 12,
                merge_mov: 6,
                load: 8,
                store: 6,
                ..base_mix
            },
            block_weights: [5, 7, 2, 1, 3, 1],
            min_blocks: 4,
            max_blocks: 14,
            max_trips: 6,
            reg_pressure: 7,
            mem_slots: 32,
            max_call_depth: 3,
            branch_bias: (60, 90),
        },
    ]
}

/// Looks up a profile by name.
pub fn find_profile(name: &str) -> Option<FuzzProfile> {
    profiles().into_iter().find(|p| p.name == name)
}

/// Every profile name, in registry order.
pub fn profile_names() -> Vec<&'static str> {
    profiles().iter().map(|p| p.name).collect()
}

/// One block of a [`FuzzPlan`]: a node of the motif grammar with its drawn
/// parameters. All trip counts are architectural (the oracle executes them
/// too), so capping them shrinks the dynamic trace without changing the
/// code of other blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzBlock {
    /// Straight-line op-mix code.
    Straight {
        /// µ-ops drawn from the profile mix.
        ops: u32,
    },
    /// A counted loop, optionally with one nested inner loop.
    Loop {
        /// Outer trip count.
        trips: u64,
        /// Mixed ops per outer iteration.
        ops: u32,
        /// Inner `(trips, ops)` when nested.
        nested: Option<(u64, u32)>,
    },
    /// Data-dependent branches over evolving memory.
    Branchy {
        /// Iterations.
        trips: u64,
        /// Percent taken bias.
        bias_pct: u32,
        /// Mixed ops per arm.
        arm_ops: u32,
    },
    /// Serially dependent pseudo-random pointer chase.
    Chase {
        /// Iterations.
        trips: u64,
        /// 8-byte slots in the walked footprint.
        slots: u64,
    },
    /// Spill/reload pairs over rotating slots.
    SpillReload {
        /// Iterations.
        trips: u64,
        /// Rotating spill slots.
        slots: u64,
        /// Mixed ops between spill and reload.
        gap: u32,
    },
    /// A call chain `f0 → f1 → … → leaf` invoked from a counted loop.
    CallChain {
        /// Loop iterations (calls of the chain head).
        trips: u64,
        /// Chain depth (functions).
        depth: u32,
        /// Mixed ops in the leaf.
        leaf_ops: u32,
    },
}

impl FuzzBlock {
    /// The block with every trip count capped at `cap` (at least 1).
    pub fn with_trip_cap(self, cap: u64) -> FuzzBlock {
        let cap = cap.max(1);
        match self {
            FuzzBlock::Straight { ops } => FuzzBlock::Straight { ops },
            FuzzBlock::Loop { trips, ops, nested } => FuzzBlock::Loop {
                trips: trips.min(cap),
                ops,
                nested: nested.map(|(t, o)| (t.min(cap), o)),
            },
            FuzzBlock::Branchy {
                trips,
                bias_pct,
                arm_ops,
            } => FuzzBlock::Branchy {
                trips: trips.min(cap),
                bias_pct,
                arm_ops,
            },
            FuzzBlock::Chase { trips, slots } => FuzzBlock::Chase {
                trips: trips.min(cap),
                slots,
            },
            FuzzBlock::SpillReload { trips, slots, gap } => FuzzBlock::SpillReload {
                trips: trips.min(cap),
                slots,
                gap,
            },
            FuzzBlock::CallChain {
                trips,
                depth,
                leaf_ops,
            } => FuzzBlock::CallChain {
                trips: trips.min(cap),
                depth,
                leaf_ops,
            },
        }
    }
}

/// A block with its stable identity: `index` is the position in the
/// *unshrunk* plan (it addresses the block in a [`ShrinkSpec`] and pins its
/// memory region), `salt` seeds the block's private RNG so its code is
/// independent of every other block's fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedBlock {
    /// Position in the original plan.
    pub index: usize,
    /// Per-block RNG seed.
    pub salt: u64,
    /// The grammar node.
    pub block: FuzzBlock,
}

/// The intermediate representation between a seed and a program: the block
/// list a [`FuzzSpec`] expands to, and the thing shrinking edits.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzPlan {
    /// The generating seed (identification only; the blocks are the truth).
    pub seed: u64,
    /// The generating profile.
    pub profile: FuzzProfile,
    /// Blocks in emission order.
    pub blocks: Vec<PlannedBlock>,
}

fn fnv(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
        (h ^ c as u64).wrapping_mul(0x100_0000_01b3)
    })
}

impl FuzzPlan {
    /// Expands `(profile, seed)` into a block list. Deterministic.
    pub fn from_seed(profile: &FuzzProfile, seed: u64) -> FuzzPlan {
        let mut rng = Xorshift::new(seed ^ fnv(profile.name));
        let lo = profile.min_blocks.max(1);
        let hi = profile.max_blocks.clamp(lo, MAX_BLOCKS);
        let n = lo + rng.below((hi - lo + 1) as u64) as u32;
        let trips = |rng: &mut Xorshift| 1 + rng.below(profile.max_trips.max(1));
        let mut blocks = Vec::with_capacity(n as usize);
        for index in 0..n as usize {
            let salt = rng.next_u64();
            let kind = weighted_pick(&mut rng, &profile.block_weights);
            let block = match kind {
                0 => FuzzBlock::Straight {
                    ops: 6 + rng.below(24) as u32,
                },
                1 => FuzzBlock::Loop {
                    trips: trips(&mut rng),
                    ops: 4 + rng.below(16) as u32,
                    nested: if rng.chance(35.0) {
                        Some((1 + rng.below(4), 2 + rng.below(6) as u32))
                    } else {
                        None
                    },
                },
                2 => {
                    let (lo, hi) = profile.branch_bias;
                    FuzzBlock::Branchy {
                        trips: trips(&mut rng),
                        bias_pct: lo + rng.below((hi.max(lo) - lo + 1) as u64) as u32,
                        arm_ops: 1 + rng.below(5) as u32,
                    }
                }
                3 => FuzzBlock::Chase {
                    trips: trips(&mut rng),
                    slots: profile.mem_slots.max(4),
                },
                4 => FuzzBlock::SpillReload {
                    trips: trips(&mut rng),
                    slots: 1 + rng.below(profile.mem_slots.max(1)),
                    gap: 1 + rng.below(8) as u32,
                },
                _ => FuzzBlock::CallChain {
                    trips: trips(&mut rng),
                    depth: 1 + rng.below(profile.max_call_depth.clamp(1, MAX_CALL_DEPTH) as u64)
                        as u32,
                    leaf_ops: 1 + rng.below(6) as u32,
                },
            };
            blocks.push(PlannedBlock { index, salt, block });
        }
        FuzzPlan {
            seed,
            profile: profile.clone(),
            blocks,
        }
    }

    /// The plan with `spec` applied: blocks filtered by original index and
    /// trip counts capped. Emitted code of surviving blocks is unchanged.
    pub fn apply(&self, spec: &ShrinkSpec) -> FuzzPlan {
        let mut out = self.clone();
        if let Some(keep) = &spec.keep {
            out.blocks.retain(|pb| keep.contains(&pb.index));
        }
        if let Some(cap) = spec.trip_cap {
            for pb in &mut out.blocks {
                pb.block = pb.block.with_trip_cap(cap);
            }
        }
        out
    }

    /// Compiles the plan into a validated, never-halting program.
    pub fn build(&self) -> Program {
        let p = self.profile.reg_pressure.clamp(2, 7);
        let mut b = ProgramBuilder::new();
        // Prologue (outside the infinite loop): seed the accumulator and
        // the data pool so early loads/stores have defined addresses.
        let mut seed_rng = Xorshift::new(self.seed ^ 0x5eed_5eed);
        b.push(Op::LoadImm {
            dst: r(15),
            imm: seed_rng.next_u64(),
        });
        for i in 0..p {
            b.push(Op::LoadImm {
                dst: r(8 + i),
                imm: seed_rng.next_u64(),
            });
        }
        let outer_top = b.here();
        for pb in &self.blocks {
            let mut ctx = Emit {
                b: &mut b,
                rng: Xorshift::new(pb.salt),
                region: 0x2000_0000 + pb.index as u64 * 0x0100_0000,
                mix: self.profile.mix,
                pressure: p,
                slots: self.profile.mem_slots.max(4),
            };
            ctx.block(&pb.block);
        }
        b.push(Op::Jump { target: outer_top });
        b.try_build()
            .expect("fuzz programs are valid by construction")
    }
}

/// Weighted index pick; total weight must be non-zero.
fn weighted_pick(rng: &mut Xorshift, weights: &[u32]) -> usize {
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    let mut roll = rng.below(total.max(1));
    for (i, &w) in weights.iter().enumerate() {
        if roll < w as u64 {
            return i;
        }
        roll -= w as u64;
    }
    weights.len() - 1
}

/// Per-block emission context.
struct Emit<'a> {
    b: &'a mut ProgramBuilder,
    rng: Xorshift,
    region: u64,
    mix: OpMix,
    pressure: usize,
    slots: u64,
}

impl Emit<'_> {
    fn data(&mut self) -> ArchReg {
        r(8 + self.rng.below(self.pressure as u64) as usize)
    }

    fn fdata(&mut self) -> ArchReg {
        f(8 + self.rng.below(self.pressure as u64) as usize)
    }

    /// 8-aligned slot offset within the block's footprint.
    fn slot_off(&mut self) -> u64 {
        self.rng.below(self.slots) * 8
    }

    fn access_size(&mut self) -> u8 {
        *self.rng.pick(&[8u8, 8, 8, 4, 2, 1])
    }

    /// One straight-line µ-op drawn from the profile mix. `r4` must hold
    /// the block's region base.
    fn mixed_op(&mut self) {
        let m = self.mix;
        debug_assert!(m.total() > 0, "profile mix has no weight");
        let weights = [
            m.alu,
            m.mul,
            m.div,
            m.fp,
            m.mov,
            m.merge_mov,
            m.fp_mov,
            m.load,
            m.store,
        ];
        match weighted_pick(&mut self.rng, &weights) {
            0 => {
                let (d, s1) = (self.data(), self.data());
                let s2 = if self.rng.chance(30.0) {
                    Operand::Imm(self.rng.below(1 << 16) | 1)
                } else {
                    Operand::Reg(self.data())
                };
                let op =
                    *self
                        .rng
                        .pick(&[AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And, AluOp::Or]);
                // A third of ALU work threads through the accumulator to
                // keep a serial chain alive (realistic ILP).
                if self.rng.chance(33.0) {
                    self.b.push(Op::IntAlu {
                        op,
                        dst: r(15),
                        src1: r(15),
                        src2: Operand::Reg(s1),
                    });
                } else {
                    self.b.push(Op::IntAlu {
                        op,
                        dst: d,
                        src1: s1,
                        src2: s2,
                    });
                }
            }
            1 => {
                let (d, s1, s2) = (self.data(), self.data(), self.data());
                self.b.push(Op::IntMul {
                    dst: d,
                    src1: s1,
                    src2: Operand::Reg(s2),
                });
            }
            2 => {
                let (d, s1) = (self.data(), self.data());
                let s2 = Operand::Imm(self.rng.below(255) + 1);
                self.b.push(Op::IntDiv {
                    dst: d,
                    src1: s1,
                    src2: s2,
                });
            }
            3 => {
                let (d, s1, s2) = (self.fdata(), self.fdata(), self.fdata());
                match self.rng.below(8) {
                    0 => self.b.push(Op::FpDiv {
                        dst: d,
                        src1: s1,
                        src2: s2,
                    }),
                    1 | 2 => self.b.push(Op::FpMul {
                        dst: d,
                        src1: s1,
                        src2: s2,
                    }),
                    _ => self.b.push(Op::FpAdd {
                        dst: d,
                        src1: s1,
                        src2: s2,
                    }),
                };
            }
            4 => {
                let (d, s) = (self.data(), self.data());
                let width = if self.rng.chance(30.0) {
                    MoveWidth::W32
                } else {
                    MoveWidth::W64
                };
                self.b.push(Op::MovInt {
                    dst: d,
                    src: s,
                    width,
                });
            }
            5 => {
                let (d, s) = (self.data(), self.data());
                let width = if self.rng.chance(50.0) {
                    MoveWidth::W8
                } else {
                    MoveWidth::W16
                };
                self.b.push(Op::MovInt {
                    dst: d,
                    src: s,
                    width,
                });
            }
            6 => {
                let (d, s) = (self.fdata(), self.fdata());
                self.b.push(Op::MovFp { dst: d, src: s });
            }
            7 => {
                // Direct or value-indexed load; indexed loads serialize on
                // the indexing register like real address computation.
                let dst = if self.rng.chance(25.0) {
                    self.fdata()
                } else {
                    self.data()
                };
                let size = self.access_size();
                if self.rng.chance(40.0) {
                    let idx = self.data();
                    self.indexed_addr(idx);
                    self.b.push(Op::Load {
                        dst,
                        base: r(2),
                        offset: 0,
                        size,
                    });
                } else {
                    let off = self.slot_off();
                    self.b.push(Op::Load {
                        dst,
                        base: r(4),
                        offset: off as i64,
                        size,
                    });
                }
            }
            _ => {
                let data = if self.rng.chance(25.0) {
                    self.fdata()
                } else {
                    self.data()
                };
                let size = self.access_size();
                if self.rng.chance(40.0) {
                    let idx = self.data();
                    self.indexed_addr(idx);
                    self.b.push(Op::Store {
                        data,
                        base: r(2),
                        offset: 0,
                        size,
                    });
                } else {
                    let off = self.slot_off();
                    self.b.push(Op::Store {
                        data,
                        base: r(4),
                        offset: off as i64,
                        size,
                    });
                }
            }
        }
    }

    /// `r2 = region + ((idx & slot_mask) * 8)`: an 8-aligned address inside
    /// the block footprint, serially dependent on `idx`.
    fn indexed_addr(&mut self, idx: ArchReg) {
        let mask = self.slots.next_power_of_two() - 1;
        self.b.push(Op::IntAlu {
            op: AluOp::And,
            dst: r(2),
            src1: idx,
            src2: Operand::Imm(mask),
        });
        self.b.push(Op::IntAlu {
            op: AluOp::Shl,
            dst: r(2),
            src1: r(2),
            src2: Operand::Imm(3),
        });
        self.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(2),
            src1: r(2),
            src2: Operand::Reg(r(4)),
        });
    }

    /// Loads the block's region base into `r4` (every block starts here).
    fn region_base(&mut self) {
        let region = self.region;
        self.b.push(Op::LoadImm {
            dst: r(4),
            imm: region,
        });
    }

    /// Counted loop on `counter` around `body`.
    fn counted(&mut self, counter: usize, trips: u64, body: impl FnOnce(&mut Self)) {
        self.b.push(Op::LoadImm {
            dst: r(counter),
            imm: trips.max(1),
        });
        let top = self.b.here();
        body(self);
        self.b.push(Op::IntAlu {
            op: AluOp::Sub,
            dst: r(counter),
            src1: r(counter),
            src2: Operand::Imm(1),
        });
        self.b.push(Op::CondBranch {
            cond: Cond::Ne,
            src1: r(counter),
            src2: Operand::Imm(0),
            target: top,
        });
    }

    fn block(&mut self, block: &FuzzBlock) {
        self.region_base();
        match *block {
            FuzzBlock::Straight { ops } => {
                for _ in 0..ops {
                    self.mixed_op();
                }
            }
            FuzzBlock::Loop { trips, ops, nested } => {
                self.counted(3, trips, |e| {
                    for _ in 0..ops {
                        e.mixed_op();
                    }
                    if let Some((in_trips, in_ops)) = nested {
                        e.counted(7, in_trips, |e| {
                            for _ in 0..in_ops {
                                e.mixed_op();
                            }
                        });
                    }
                });
            }
            FuzzBlock::Branchy {
                trips,
                bias_pct,
                arm_ops,
            } => self.branchy(trips, bias_pct, arm_ops),
            FuzzBlock::Chase { trips, slots } => self.chase(trips, slots),
            FuzzBlock::SpillReload { trips, slots, gap } => self.spill_reload(trips, slots, gap),
            FuzzBlock::CallChain {
                trips,
                depth,
                leaf_ops,
            } => self.call_chain(trips, depth, leaf_ops),
        }
    }

    /// Data-dependent branch diamonds over evolving memory (outcomes change
    /// across outer iterations, so they stay hard to predict).
    fn branchy(&mut self, trips: u64, bias_pct: u32, arm_ops: u32) {
        let threshold = ((bias_pct.min(100) as f64 / 100.0) * u64::MAX as f64) as u64;
        let mask = self.slots.next_power_of_two() - 1;
        // Wander start point derived from the accumulator.
        self.b.push(Op::IntAlu {
            op: AluOp::Xor,
            dst: r(1),
            src1: r(15),
            src2: Operand::Imm(self.rng.next_u64()),
        });
        self.counted(3, trips, |e| {
            e.b.push(Op::IntAlu {
                op: AluOp::And,
                dst: r(2),
                src1: r(1),
                src2: Operand::Imm(mask),
            });
            e.b.push(Op::IntAlu {
                op: AluOp::Shl,
                dst: r(2),
                src1: r(2),
                src2: Operand::Imm(3),
            });
            e.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(2),
                src1: r(2),
                src2: Operand::Reg(r(4)),
            });
            e.b.push(Op::Load {
                dst: r(6),
                base: r(2),
                offset: 0,
                size: 8,
            });
            let br = e.b.push(Op::CondBranch {
                cond: Cond::Lt,
                src1: r(6),
                src2: Operand::Imm(threshold),
                target: 0, // patched
            });
            for _ in 0..arm_ops {
                e.mixed_op();
            }
            let jmp = e.b.push(Op::Jump { target: 0 });
            let taken = e.b.here();
            e.b.patch_target(br, taken);
            for _ in 0..arm_ops {
                e.mixed_op();
            }
            let join = e.b.here();
            e.b.patch_target(jmp, join);
            // Evolve the decision data so the branch never settles into a
            // memorizable outer-loop period.
            e.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(6),
                src1: r(6),
                src2: Operand::Reg(r(15)),
            });
            e.b.push(Op::IntMul {
                dst: r(6),
                src1: r(6),
                src2: Operand::Imm(0x9e37_79b9_7f4a_7c15),
            });
            e.b.push(Op::Store {
                data: r(6),
                base: r(2),
                offset: 0,
                size: 8,
            });
            e.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(1),
                src1: r(1),
                src2: Operand::Imm(1),
            });
        });
    }

    /// Serially dependent pseudo-random walk over `slots` 8-byte slots.
    fn chase(&mut self, trips: u64, slots: u64) {
        let mask = slots.next_power_of_two() - 1;
        let phase = self.rng.next_u64();
        self.b.push(Op::IntAlu {
            op: AluOp::Xor,
            dst: r(1),
            src1: r(15),
            src2: Operand::Imm(phase),
        });
        self.b.push(Op::LoadImm { dst: r(5), imm: 0 });
        self.counted(3, trips, |e| {
            e.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(1),
                src1: r(1),
                src2: Operand::Imm(0x632b_e5ab),
            });
            e.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(2),
                src1: r(5),
                src2: Operand::Reg(r(1)),
            });
            e.b.push(Op::IntMul {
                dst: r(2),
                src1: r(2),
                src2: Operand::Imm(0x9e37_79b9_7f4a_7c15),
            });
            e.b.push(Op::IntAlu {
                op: AluOp::And,
                dst: r(2),
                src1: r(2),
                src2: Operand::Imm(mask << 3),
            });
            e.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(2),
                src1: r(2),
                src2: Operand::Reg(r(4)),
            });
            e.b.push(Op::Load {
                dst: r(5),
                base: r(2),
                offset: 0,
                size: 8,
            });
            e.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(15),
                src1: r(15),
                src2: Operand::Reg(r(5)),
            });
        });
    }

    /// Spill/reload pairs over rotating slots with a mixed-op gap; the
    /// reloaded value feeds the next iteration's producer (the loop-carried
    /// dependency passes through memory — what SMB collapses).
    fn spill_reload(&mut self, trips: u64, slots: u64, gap: u32) {
        let slot_mask = slots.next_power_of_two() - 1;
        self.b.push(Op::LoadImm { dst: r(1), imm: 0 });
        self.counted(3, trips, |e| {
            e.b.push(Op::IntAlu {
                op: AluOp::And,
                dst: r(2),
                src1: r(1),
                src2: Operand::Imm(slot_mask),
            });
            e.b.push(Op::IntAlu {
                op: AluOp::Shl,
                dst: r(2),
                src1: r(2),
                src2: Operand::Imm(3),
            });
            e.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(2),
                src1: r(2),
                src2: Operand::Reg(r(4)),
            });
            // Producer feeds the spill.
            e.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(8),
                src1: r(8),
                src2: Operand::Imm(0x9e37),
            });
            e.b.push(Op::Store {
                data: r(8),
                base: r(2),
                offset: 0,
                size: 8,
            });
            for _ in 0..gap {
                e.mixed_op();
            }
            e.b.push(Op::Load {
                dst: r(9),
                base: r(2),
                offset: 0,
                size: 8,
            });
            e.b.push(Op::IntAlu {
                op: AluOp::Xor,
                dst: r(8),
                src1: r(9),
                src2: Operand::Imm(0x5a5a),
            });
            e.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(15),
                src1: r(15),
                src2: Operand::Reg(r(9)),
            });
            e.b.push(Op::IntAlu {
                op: AluOp::Add,
                dst: r(1),
                src1: r(1),
                src2: Operand::Imm(1),
            });
        });
    }

    /// A depth-`depth` call chain laid out leaf-first (every call target is
    /// already defined), jumped over by the fall-through path, invoked from
    /// a counted loop through move-heavy argument glue.
    fn call_chain(&mut self, trips: u64, depth: u32, leaf_ops: u32) {
        let depth = depth.clamp(1, MAX_CALL_DEPTH);
        let skip = self.b.push(Op::Jump { target: 0 });
        // Leaf.
        let mut entry = self.b.here();
        for _ in 0..leaf_ops {
            self.mixed_op();
        }
        self.b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(15),
            src1: r(15),
            src2: Operand::Imm(1),
        });
        self.b.push(Op::Ret);
        // Wrappers, innermost outward; each calls the previous entry.
        for level in 1..depth {
            let this = self.b.here();
            if level % 2 == 0 {
                self.b.push(Op::MovInt {
                    dst: r(6),
                    src: r(15),
                    width: MoveWidth::W64,
                });
            }
            self.b.push(Op::Call { target: entry });
            self.b.push(Op::Ret);
            entry = this;
        }
        let after = self.b.here();
        self.b.patch_target(skip, after);
        self.counted(3, trips, |e| {
            // Argument glue: eliminable moves feeding the chain.
            e.b.push(Op::MovInt {
                dst: r(6),
                src: r(15),
                width: MoveWidth::W64,
            });
            e.b.push(Op::Call { target: entry });
        });
    }
}

/// A named fuzz case: profile + seed, the unit the differential harness,
/// the workload registry (`fuzz-<profile>-<seed>`) and `.scenario` files
/// exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSpec {
    /// Profile name (must be in [`profiles`]).
    pub profile: String,
    /// Generation seed.
    pub seed: u64,
}

impl FuzzSpec {
    /// Builds a spec, rejecting unknown profile names with the offending
    /// name (callers wrap it in their own typed errors).
    pub fn new(profile: impl Into<String>, seed: u64) -> Result<FuzzSpec, String> {
        let profile = profile.into();
        if find_profile(&profile).is_none() {
            return Err(profile);
        }
        Ok(FuzzSpec { profile, seed })
    }

    /// The registry name: `fuzz-<profile>-<seed>`.
    pub fn name(&self) -> String {
        format!("fuzz-{}-{}", self.profile, self.seed)
    }

    /// Parses a `fuzz-<profile>-<seed>` registry name (profile must exist).
    pub fn parse_name(name: &str) -> Option<FuzzSpec> {
        let rest = name.strip_prefix("fuzz-")?;
        let (profile, seed) = rest.rsplit_once('-')?;
        let seed = seed.parse().ok()?;
        FuzzSpec::new(profile, seed).ok()
    }

    /// Expands to the block plan.
    ///
    /// # Panics
    ///
    /// Panics if the profile name is unknown — impossible for specs built
    /// through [`FuzzSpec::new`] / [`FuzzSpec::parse_name`].
    pub fn plan(&self) -> FuzzPlan {
        let profile = find_profile(&self.profile)
            .unwrap_or_else(|| panic!("unknown fuzz profile {:?}", self.profile));
        FuzzPlan::from_seed(&profile, self.seed)
    }

    /// Generates the program (plan → code).
    pub fn build(&self) -> Program {
        self.plan().build()
    }

    /// Wraps the spec as a registry [`Workload`] so scenario files and the
    /// sweep engine can drive generated programs like suite members.
    pub fn workload(&self) -> Workload {
        Workload {
            name: self.name(),
            class: WorkloadClass::Int,
            source: WorkloadSource::Fuzz(self.clone()),
        }
    }
}

/// A replayable description of a shrunk plan: which original block indices
/// survive and an optional global trip cap. Prints as `keep=i,j,k;trips=n`
/// (either part may be absent) so a failure report is reproducible from its
/// command line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShrinkSpec {
    /// Original block indices to keep (`None` = all).
    pub keep: Option<Vec<usize>>,
    /// Cap applied to every trip count (`None` = untouched).
    pub trip_cap: Option<u64>,
}

impl ShrinkSpec {
    /// Whether the spec changes nothing.
    pub fn is_noop(&self) -> bool {
        self.keep.is_none() && self.trip_cap.is_none()
    }
}

impl std::fmt::Display for ShrinkSpec {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if let Some(keep) = &self.keep {
            let list: Vec<String> = keep.iter().map(|i| i.to_string()).collect();
            parts.push(format!("keep={}", list.join(",")));
        }
        if let Some(cap) = self.trip_cap {
            parts.push(format!("trips={cap}"));
        }
        write!(out, "{}", parts.join(";"))
    }
}

impl std::str::FromStr for ShrinkSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<ShrinkSpec, String> {
        let mut spec = ShrinkSpec::default();
        for part in s.split(';').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("shrink segment {part:?} is not key=value"))?;
            match key.trim() {
                "keep" => {
                    let mut keep = Vec::new();
                    for item in value.split(',').filter(|i| !i.trim().is_empty()) {
                        keep.push(
                            item.trim()
                                .parse()
                                .map_err(|_| format!("bad keep index {item:?}"))?,
                        );
                    }
                    spec.keep = Some(keep);
                }
                "trips" => {
                    spec.trip_cap = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad trips cap {value:?}"))?,
                    );
                }
                other => return Err(format!("unknown shrink key {other:?}")),
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::interp::Machine;
    use regshare_types::ARCH_REGS_PER_CLASS;
    use std::sync::Arc;

    #[test]
    fn profile_registry_is_stable_and_dash_free() {
        let names = profile_names();
        assert!(names.len() >= 5);
        for name in &names {
            assert!(!name.contains('-'), "{name}: `-` separates name fields");
            assert!(find_profile(name).is_some());
        }
        assert!(find_profile("nope").is_none());
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = FuzzSpec::new("balanced", 42).unwrap();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.len(), b.len());
        let da = Machine::new(Arc::new(a)).run_digest(5_000);
        let db = Machine::new(Arc::new(b)).run_digest(5_000);
        assert_eq!(da, db, "same spec must replay identically");
        let other = FuzzSpec::new("balanced", 43).unwrap().build();
        let dc = Machine::new(Arc::new(other)).run_digest(5_000);
        assert_ne!(da, dc, "different seeds should diverge");
    }

    #[test]
    fn every_profile_generates_valid_nonhalting_programs() {
        for profile in profiles() {
            for seed in 1..=5u64 {
                let plan = FuzzPlan::from_seed(&profile, seed);
                assert!(!plan.blocks.is_empty());
                assert!(plan.blocks.len() <= MAX_BLOCKS as usize);
                let program = plan.build();
                assert!(program.len() > 10, "{}-{seed} too small", profile.name);
                let mut m = Machine::new(Arc::new(program));
                for _ in 0..10_000 {
                    m.step();
                }
                assert!(!m.is_halted(), "{}-{seed} halted", profile.name);
            }
        }
    }

    #[test]
    fn register_pressure_and_alignment_hold_by_construction() {
        for profile in profiles() {
            let pressure = profile.reg_pressure.clamp(2, 7);
            let program = FuzzPlan::from_seed(&profile, 7).build();
            let mut m = Machine::new(Arc::new(program));
            for _ in 0..20_000 {
                let u = m.step();
                for reg in u.sources().chain(u.dst) {
                    let idx = reg.class_index();
                    assert!(idx < ARCH_REGS_PER_CLASS);
                    // Data registers stay inside the profile's pool: for
                    // both classes, indices 8.. are the data pool and only
                    // r15 (the accumulator) sits above it.
                    if idx >= 8 + pressure {
                        assert!(
                            idx == 15 && reg.class() == regshare_types::RegClass::Int,
                            "{}: data reg {reg:?} outside pressure {pressure}",
                            profile.name
                        );
                    }
                }
                if let Some(mem) = u.mem {
                    assert_eq!(
                        mem.addr % mem.size as u64,
                        0,
                        "{}: unaligned access",
                        profile.name
                    );
                    assert!(mem.addr >= 0x2000_0000, "{}: stray address", profile.name);
                }
            }
        }
    }

    #[test]
    fn calls_and_returns_balance_in_the_trace() {
        let spec = FuzzSpec::new("calls", 11).unwrap();
        let mut m = Machine::new(Arc::new(spec.build()));
        let mut depth = 0i64;
        let mut max_depth = 0i64;
        for _ in 0..30_000 {
            let u = m.step();
            if let Some(b) = u.branch {
                match b.kind {
                    regshare_isa::op::BranchKind::Call => depth += 1,
                    regshare_isa::op::BranchKind::Return => depth -= 1,
                    _ => {}
                }
            }
            max_depth = max_depth.max(depth);
            assert!(depth >= 0, "return without a call");
        }
        assert!(max_depth >= 2, "calls profile never nested: {max_depth}");
        assert!(max_depth <= MAX_CALL_DEPTH as i64);
    }

    #[test]
    fn names_round_trip_through_the_registry_format() {
        let spec = FuzzSpec::new("memory", 1234).unwrap();
        assert_eq!(spec.name(), "fuzz-memory-1234");
        assert_eq!(FuzzSpec::parse_name(&spec.name()), Some(spec));
        assert_eq!(FuzzSpec::parse_name("fuzz-doom-1"), None);
        assert_eq!(FuzzSpec::parse_name("fuzz-memory-x"), None);
        assert_eq!(FuzzSpec::parse_name("crafty"), None);
        assert!(FuzzSpec::new("doom", 1).is_err());
    }

    #[test]
    fn shrink_spec_round_trips_and_applies() {
        for text in ["keep=0,2,5;trips=2", "keep=", "trips=1", "keep=3", ""] {
            let spec: ShrinkSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
        }
        assert!("keep=a".parse::<ShrinkSpec>().is_err());
        assert!("frob=1".parse::<ShrinkSpec>().is_err());

        let plan = FuzzSpec::new("balanced", 9).unwrap().plan();
        let n = plan.blocks.len();
        assert!(n >= 3);
        let spec = ShrinkSpec {
            keep: Some(vec![0, n - 1]),
            trip_cap: Some(1),
        };
        let small = plan.apply(&spec);
        assert_eq!(small.blocks.len(), 2);
        assert_eq!(small.blocks[0].index, 0);
        assert_eq!(small.blocks[1].index, n - 1);
        for pb in &small.blocks {
            if let FuzzBlock::Loop { trips, nested, .. } = pb.block {
                assert_eq!(trips, 1);
                if let Some((t, _)) = nested {
                    assert_eq!(t, 1);
                }
            }
        }
        // Shrinking must not perturb surviving blocks: the kept blocks'
        // code is identical to the same blocks in the full program.
        let full = plan.apply(&ShrinkSpec::default());
        assert_eq!(full, plan);
        small.build(); // still valid
                       // Empty plans still build a legal non-halting program.
        let empty = plan.apply(&ShrinkSpec {
            keep: Some(vec![]),
            trip_cap: None,
        });
        let program = empty.build();
        let mut m = Machine::new(Arc::new(program));
        for _ in 0..100 {
            m.step();
        }
        assert!(!m.is_halted());
    }

    #[test]
    fn fuzz_workloads_enter_the_registry() {
        let wl = FuzzSpec::new("branchy", 3).unwrap().workload();
        assert_eq!(wl.name, "fuzz-branchy-3");
        let p = wl.build();
        assert!(p.len() > 10);
    }
}

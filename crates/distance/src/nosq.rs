//! NoSQ-style two-table distance predictor (Sha et al., §3.1 \[3\]).
//!
//! One table is indexed by the load PC only; the second by a hash of the
//! PC, 8 bits of global branch history XOR 8 bits of path history (the
//! paper's footnote 4). If both hit, the path-indexed table provides the
//! prediction. 4-bit confidence counters saturate at 15 and gate bypassing;
//! a distance mismatch resets confidence to zero.

use crate::DistancePredictor;
use regshare_types::hasher::mix64;
use regshare_types::{Addr, HistorySnapshot};

/// NoSQ-style predictor geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NosqConfig {
    /// log2(entries) per table.
    pub log_entries: u32,
    /// Tag bits.
    pub tag_bits: u32,
    /// Confidence bits (saturate-to-predict).
    pub conf_bits: u32,
}

impl NosqConfig {
    /// The paper's configuration: two 4K-entry tables, 5-bit tags, 4-bit
    /// confidence (17KB total).
    pub fn hpca16() -> NosqConfig {
        NosqConfig {
            log_entries: 12,
            tag_bits: 5,
            conf_bits: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u32,
    distance: u8,
    conf: u8,
}

/// The NoSQ-style predictor. See the module docs.
#[derive(Debug)]
pub struct NosqDistance {
    cfg: NosqConfig,
    /// PC-indexed table.
    direct: Vec<Entry>,
    /// (PC ⊕ history)-indexed table.
    hashed: Vec<Entry>,
    max_conf: u8,
    predictions: u64,
    confident: u64,
}

impl NosqDistance {
    /// Builds the predictor.
    pub fn new(cfg: NosqConfig) -> NosqDistance {
        let n = 1usize << cfg.log_entries;
        NosqDistance {
            direct: vec![Entry::default(); n],
            hashed: vec![Entry::default(); n],
            max_conf: ((1u32 << cfg.conf_bits) - 1) as u8,
            cfg,
            predictions: 0,
            confident: 0,
        }
    }

    #[inline]
    fn direct_key(&self, pc: Addr) -> (usize, u32) {
        let h = mix64(pc);
        (
            (h as usize) & ((1 << self.cfg.log_entries) - 1),
            ((h >> 40) as u32) & ((1 << self.cfg.tag_bits) - 1),
        )
    }

    #[inline]
    fn hashed_key(&self, pc: Addr, hist: HistorySnapshot) -> (usize, u32) {
        // Footnote 4: XOR 8 bits of global history with 8 bits of path
        // history, XOR with the load address left-shifted by 4.
        let mixed = (hist.ghist & 0xff) ^ (hist.path as u64 & 0xff) ^ (pc << 4);
        let h = mix64(mixed);
        (
            (h as usize) & ((1 << self.cfg.log_entries) - 1),
            ((h >> 40) as u32) & ((1 << self.cfg.tag_bits) - 1),
        )
    }

    fn train_entry(e: &mut Entry, tag: u32, observed: Option<u64>, max_conf: u8) {
        match observed {
            Some(d) if d <= u8::MAX as u64 => {
                let d = d as u8;
                if e.valid && e.tag == tag {
                    if e.distance == d {
                        e.conf = (e.conf + 1).min(max_conf);
                    } else {
                        // Mispredicting is costly vs. not predicting: reset.
                        e.distance = d;
                        e.conf = 0;
                    }
                } else {
                    *e = Entry {
                        valid: true,
                        tag,
                        distance: d,
                        conf: 0,
                    };
                }
            }
            _ => {
                // No (representable) pair: decay a matching entry.
                if e.valid && e.tag == tag {
                    e.conf = 0;
                }
            }
        }
    }
}

impl DistancePredictor for NosqDistance {
    fn name(&self) -> &'static str {
        "nosq-2table"
    }

    fn predict(&mut self, pc: Addr, hist: HistorySnapshot) -> Option<u64> {
        self.predictions += 1;
        let (di, dt) = self.direct_key(pc);
        let (hi, ht) = self.hashed_key(pc, hist);
        let d = self.direct[di];
        let h = self.hashed[hi];
        let provider = if h.valid && h.tag == ht {
            Some(h) // path-indexed table wins when it hits
        } else if d.valid && d.tag == dt {
            Some(d)
        } else {
            None
        };
        match provider {
            Some(e) if e.conf >= self.max_conf => {
                self.confident += 1;
                Some(e.distance as u64)
            }
            _ => None,
        }
    }

    fn train(&mut self, pc: Addr, hist: HistorySnapshot, observed: Option<u64>) {
        let (di, dt) = self.direct_key(pc);
        let (hi, ht) = self.hashed_key(pc, hist);
        let max = self.max_conf;
        Self::train_entry(&mut self.direct[di], dt, observed, max);
        Self::train_entry(&mut self.hashed[hi], ht, observed, max);
    }

    fn storage_bits(&self) -> usize {
        let per_entry = 1 + self.cfg.tag_bits as usize + 8 + self.cfg.conf_bits as usize;
        2 * (1 << self.cfg.log_entries) * per_entry
    }

    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.direct.encode(w);
        self.hashed.encode(w);
        w.put_u64(self.predictions);
        w.put_u64(self.confident);
    }

    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let direct: Vec<Entry> = Snap::decode(r)?;
        let hashed: Vec<Entry> = Snap::decode(r)?;
        if direct.len() != self.direct.len() || hashed.len() != self.hashed.len() {
            return Err(r.corrupt("NosqDistance table size"));
        }
        self.direct = direct;
        self.hashed = hashed;
        self.predictions = r.get_u64()?;
        self.confident = r.get_u64()?;
        Ok(())
    }
}

regshare_types::impl_snap!(Entry {
    valid,
    tag,
    distance,
    conf
});

#[cfg(test)]
mod tests {
    use super::*;

    fn h(bits: u64) -> HistorySnapshot {
        HistorySnapshot {
            ghist: bits,
            path: (bits as u16).rotate_left(3),
        }
    }

    #[test]
    fn stable_distance_becomes_confident() {
        let mut p = NosqDistance::new(NosqConfig::hpca16());
        let pc = 0x400100;
        for _ in 0..20 {
            p.train(pc, h(0), Some(12));
        }
        assert_eq!(p.predict(pc, h(0)), Some(12));
    }

    #[test]
    fn unstable_distance_never_confident() {
        let mut p = NosqDistance::new(NosqConfig::hpca16());
        let pc = 0x400200;
        for i in 0..100 {
            p.train(pc, h(0), Some(if i % 2 == 0 { 5 } else { 9 }));
        }
        assert_eq!(p.predict(pc, h(0)), None);
    }

    #[test]
    fn history_differentiates_only_via_hashed_table() {
        // Distance correlates with history: PC-only table thrashes, but the
        // hashed table sees two different entries and becomes confident.
        let mut p = NosqDistance::new(NosqConfig::hpca16());
        let pc = 0x400300;
        for _ in 0..40 {
            p.train(pc, h(0b0), Some(7));
            p.train(pc, h(0b1), Some(21));
        }
        assert_eq!(p.predict(pc, h(0b0)), Some(7));
        assert_eq!(p.predict(pc, h(0b1)), Some(21));
    }

    #[test]
    fn oversized_distance_trains_as_no_pair() {
        let mut p = NosqDistance::new(NosqConfig::hpca16());
        let pc = 0x400400;
        for _ in 0..20 {
            p.train(pc, h(0), Some(12));
        }
        assert!(p.predict(pc, h(0)).is_some());
        p.train(pc, h(0), Some(10_000)); // unrepresentable
        assert_eq!(p.predict(pc, h(0)), None, "confidence must reset");
    }

    #[test]
    fn storage_is_17kb() {
        let p = NosqDistance::new(NosqConfig::hpca16());
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((16.0..=19.0).contains(&kb), "NoSQ storage {kb}KB");
    }
}

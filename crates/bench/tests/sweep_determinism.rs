//! The sweep engine's headline guarantee: the rendered table and `csv:`
//! block of a sweep are byte-identical regardless of worker count, because
//! jobs are pure and the grid is merged in spec order.

use regshare_bench::{RunWindow, SweepGrid, SweepSpec, Table};
use regshare_core::CoreConfig;
use regshare_workloads::by_names;

fn representative_spec(window: RunWindow) -> impl Fn(usize) -> SweepGrid {
    move |jobs| {
        let workloads = by_names(&["crafty", "hmmer", "astar", "applu"]);
        SweepSpec::new(workloads, window)
            .variant("base", CoreConfig::hpca16())
            .variant("me", CoreConfig::hpca16().with_me())
            .variant(
                "both32",
                CoreConfig::hpca16()
                    .with_me()
                    .with_smb()
                    .with_isrb_entries(32),
            )
            .jobs(jobs)
            .run()
            .expect("sweep completes")
    }
}

/// Renders the grid the way the bench targets do: aligned table + `csv:`
/// block + geomean footers.
fn render(grid: &SweepGrid) -> String {
    let mut t = Table::new(vec!["bench", "base_ipc", "me%", "both32%", "traps"]);
    for row in grid.rows() {
        t.row(vec![
            row.workload().name.to_string(),
            format!("{:.3}", row.get("base").unwrap().ipc()),
            format!("{:+.2}", row.speedup("base", "me").unwrap()),
            format!("{:+.2}", row.speedup("base", "both32").unwrap()),
            format!("{}", row.get("base").unwrap().stats.memory_traps),
        ]);
    }
    for label in ["me", "both32"] {
        t.footer(format!(
            "geomean speedup, {label}: {:+.2}%",
            grid.geomean_speedup("base", label).unwrap()
        ));
    }
    t.render()
}

#[test]
fn sweep_output_is_byte_identical_across_job_counts() {
    let spec = representative_spec(RunWindow {
        warmup: 2_000,
        measure: 6_000,
    });
    let serial = render(&spec(1));
    let sharded = render(&spec(4));
    assert!(serial.contains("csv:bench"), "render lost its csv block");
    assert_eq!(
        serial, sharded,
        "REGSHARE_JOBS=4 output differs from REGSHARE_JOBS=1"
    );
    // Oversubscription (more workers than jobs) must not change anything
    // either — the pool clamps to the job count.
    let oversubscribed = render(&spec(64));
    assert_eq!(serial, oversubscribed);
}

#[test]
fn full_measurements_are_identical_across_job_counts() {
    // Byte-identical tables could in principle hide rounding-level drift;
    // the underlying stats structs must match exactly too.
    let spec = representative_spec(RunWindow {
        warmup: 1_000,
        measure: 3_000,
    });
    let (a, b) = (spec(1), spec(3));
    for (ra, rb) in a.rows().zip(b.rows()) {
        for label in ["base", "me", "both32"] {
            assert_eq!(
                ra.get(label).unwrap().stats,
                rb.get(label).unwrap().stats,
                "{}/{label} diverged across job counts",
                ra.workload().name
            );
        }
    }
}

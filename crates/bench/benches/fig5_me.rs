//! **Figure 5**: move elimination.
//!
//! (a) Speedup over baseline as a function of ISRB entries (8/16/32/∞).
//! (b) Percentage of renamed µ-ops eliminated with an unlimited ISRB.
//!
//! Paper shape: a handful of entries suffice (8 reasonable, 16 generally
//! enough, 32 ≈ unlimited); gains are limited (~1% gmean, up to ~5%);
//! elimination rate does not correlate strongly with speedup.
//!
//! The matrix is the `fig5_me` preset scenario (base + `me` preset at each
//! ISRB size, all declared through the validated builder).

use regshare_bench::{preset, Table};

const SIZES: [(usize, &str); 4] = [(8, "me8"), (16, "me16"), (32, "me32"), (0, "meUnl")];

fn main() {
    let scenario = preset("fig5_me").expect("built-in scenario");
    let grid = scenario
        .to_sweep()
        .expect("preset validates")
        .run()
        .expect("sweep completes");

    let mut t = Table::new(vec![
        "bench",
        "base_ipc",
        "me8%",
        "me16%",
        "me32%",
        "meUnl%",
        "pct_renamed_elim",
    ]);
    for row in grid.rows() {
        let mut cells = vec![
            row.workload().name.clone(),
            format!("{:.3}", row.get("base").expect("declared label").ipc()),
        ];
        for (_, label) in SIZES {
            cells.push(format!(
                "{:+.2}",
                row.speedup("base", label).expect("declared label")
            ));
        }
        cells.push(format!(
            "{:.2}%",
            row.get("meUnl")
                .expect("declared label")
                .stats
                .pct_renamed_eliminated()
        ));
        t.row(cells);
    }
    for (n, label) in SIZES {
        let pretty = if n == 0 {
            "unlimited".into()
        } else {
            n.to_string()
        };
        t.footer(format!(
            "geomean speedup, ISRB {pretty}: {:+.2}%",
            grid.geomean_speedup("base", label).expect("declared label")
        ));
    }
    println!("# Figure 5(a)+(b): move elimination vs ISRB size\n");
    t.print();
}

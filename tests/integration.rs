//! Cross-crate integration tests: the full system assembled through the
//! `regshare` facade.

use regshare::core::{CoreConfig, DistancePredictorKind, Simulator, TrackerKind};
use regshare::distance::NosqConfig;
use regshare::refcount::IsrbConfig;
use regshare::types::stats::speedup_pct;
use regshare::workloads::{mini, suite};

const WARM: u64 = 20_000;
const MEASURE: u64 = 80_000;

fn ipc(program: &regshare::isa::Program, cfg: CoreConfig) -> f64 {
    let mut sim = Simulator::new(program, cfg);
    sim.run(WARM);
    let warm = *sim.stats();
    sim.run(MEASURE);
    sim.stats().delta_since(&warm).ipc()
}

#[test]
fn whole_suite_runs_on_baseline() {
    // Every workload must run without deadlock and with a sane IPC.
    for wl in suite() {
        let program = wl.build();
        let mut sim = Simulator::new(&program, CoreConfig::hpca16());
        let s = sim.run(30_000);
        assert!(
            s.ipc() > 0.01 && s.ipc() <= 8.0,
            "{}: IPC {}",
            wl.name,
            s.ipc()
        );
        sim.audit_registers()
            .unwrap_or_else(|e| panic!("{}: {e}", wl.name));
    }
}

#[test]
fn sharing_never_hurts_architecture_across_suite_sample() {
    for name in ["crafty", "hmmer", "astar", "mgrid", "gamess"] {
        let wl = suite().into_iter().find(|w| w.name == name).unwrap();
        let program = wl.build();
        let mut a = Simulator::new(&program, CoreConfig::hpca16());
        a.run(60_000);
        let mut b = Simulator::new(
            &program,
            CoreConfig::hpca16()
                .with_me()
                .with_smb()
                .with_isrb_entries(16),
        );
        b.run(60_000);
        assert_eq!(a.arch_digest(), b.arch_digest(), "{name} diverged");
    }
}

#[test]
fn move_elimination_gains_on_move_heavy_workload() {
    let wl = suite().into_iter().find(|w| w.name == "vortex").unwrap();
    let program = wl.build();
    let base = ipc(&program, CoreConfig::hpca16());
    let me = ipc(&program, CoreConfig::hpca16().with_me());
    assert!(
        speedup_pct(base, me) > 0.5,
        "ME should speed up vortex: base {base:.3}, me {me:.3}"
    );
}

#[test]
fn smb_gains_on_spill_heavy_workload() {
    let wl = suite().into_iter().find(|w| w.name == "astar").unwrap();
    let program = wl.build();
    let base = ipc(&program, CoreConfig::hpca16());
    let smb = ipc(&program, CoreConfig::hpca16().with_smb());
    assert!(
        speedup_pct(base, smb) > 2.0,
        "SMB should speed up astar: base {base:.3}, smb {smb:.3}"
    );
}

#[test]
fn isrb_size_ordering_is_monotonicish() {
    // More ISRB entries can only enable more sharing; allow small noise but
    // the unlimited configuration must beat a 2-entry one on a workload
    // that uses both mechanisms heavily.
    let wl = suite().into_iter().find(|w| w.name == "hmmer").unwrap();
    let program = wl.build();
    let tiny = ipc(
        &program,
        CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_isrb_entries(2),
    );
    let unl = ipc(
        &program,
        CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_isrb_entries(0),
    );
    assert!(
        unl >= tiny * 0.995,
        "unlimited ISRB ({unl:.3}) should not lose to 2-entry ({tiny:.3})"
    );
}

#[test]
fn tage_distance_competitive_with_nosq_across_workloads() {
    // The paper's claim is aggregate ("our TAGE-like scheme outperforms the
    // more conventional predictor in most cases"): compare geomeans over
    // several history-correlated, spill-heavy workloads.
    let mut tage_ipcs = Vec::new();
    let mut nosq_ipcs = Vec::new();
    for name in ["twolf", "sjeng", "hmmer", "zeusmp", "mgrid"] {
        let wl = suite().into_iter().find(|w| w.name == name).unwrap();
        let program = wl.build();
        tage_ipcs.push(ipc(
            &program,
            CoreConfig::hpca16().with_smb().with_isrb_entries(0),
        ));
        let mut nosq_cfg = CoreConfig::hpca16().with_smb().with_isrb_entries(0);
        nosq_cfg.distance_predictor = DistancePredictorKind::Nosq(NosqConfig::hpca16());
        nosq_ipcs.push(ipc(&program, nosq_cfg));
    }
    let g = |v: &[f64]| v.iter().map(|x| x.ln()).sum::<f64>().exp();
    let (tg, ng) = (g(&tage_ipcs), g(&nosq_ipcs));
    // Our synthetic workloads' distance-history correlations are short
    // enough that NoSQ's hashed table captures most of them too; across the
    // full 36-workload suite the TAGE-like predictor is slightly ahead (see
    // EXPERIMENTS.md), and on this subset the two must stay within a few
    // percent of each other.
    assert!(
        tg >= ng * 0.95,
        "TAGE-like geomean ({tg:.3}) fell too far behind NoSQ-style ({ng:.3})"
    );
}

#[test]
fn mit_cannot_bypass_but_still_eliminates_moves() {
    let program = mini().build();
    let cfg = CoreConfig::hpca16()
        .with_me()
        .with_smb()
        .with_tracker(TrackerKind::Mit { entries: 8 });
    let mut sim = Simulator::new(&program, cfg);
    let s = sim.run(60_000);
    assert!(s.moves_eliminated > 0, "MIT should support ME");
    assert_eq!(s.loads_bypassed, 0, "MIT must reject SMB shares");
    assert!(s.tracker.shares_rejected_kind > 0);
}

#[test]
fn counter_width_three_bits_is_close_to_wide() {
    let wl = suite().into_iter().find(|w| w.name == "applu").unwrap();
    let program = wl.build();
    let narrow = ipc(
        &program,
        CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_tracker(TrackerKind::Isrb(IsrbConfig {
                entries: 32,
                counter_bits: 3,
                ..IsrbConfig::hpca16()
            })),
    );
    let wide = ipc(
        &program,
        CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_tracker(TrackerKind::Isrb(IsrbConfig {
                entries: 32,
                counter_bits: 31,
                ..IsrbConfig::hpca16()
            })),
    );
    let delta = (wide / narrow - 1.0) * 100.0;
    assert!(
        delta.abs() < 3.0,
        "3-bit counters should be near 31-bit: {delta:.2}%"
    );
}

#[test]
fn storage_hierarchy_matches_paper_argument() {
    // ISRB ≪ matrix; ISRB checkpoints ≪ MIT checkpoints (per entry).
    let isrb = TrackerKind::Isrb(IsrbConfig::hpca16()).build(256, 192);
    let matrix = TrackerKind::RothMatrix.build(168, 192);
    assert!(isrb.storage().main_bits * 50 < matrix.storage().main_bits);
    let mit = TrackerKind::Mit { entries: 32 }.build(256, 192);
    assert!(
        isrb.storage().per_checkpoint_bits < mit.storage().per_checkpoint_bits,
        "ISRB checkpoints must be smaller than MIT checkpoints"
    );
}

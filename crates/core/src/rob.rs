//! The reorder buffer, including the paper's third `release_head` pointer
//! for lazy register reclaiming (§3.3).
//!
//! Entries are addressed by sequence number (`slot = seq % capacity`), which
//! is exact because sequence numbers stay dense across squashes (squashed
//! numbers are re-used by the re-fetched path). Three pointers delimit
//! regions, oldest to youngest:
//!
//! ```text
//!   release_seq ──► committed, data still valid (lazy mode only)
//!   head_seq    ──► oldest in-flight (next to commit)
//!   tail_seq    ──► next sequence number to allocate
//! ```
//!
//! In eager mode `release_seq == head_seq` at all times. Occupancy is
//! `tail_seq - release_seq`, so keeping committed state reachable (for SMB
//! from committed instructions) genuinely consumes ROB space, as in the
//! paper.

use regshare_isa::op::{BranchKind, MemRef, UopKind};
use regshare_predictors::tage::TagePrediction;
use regshare_refcount::ShareRequest;
use regshare_types::{Addr, ArchReg, HistorySnapshot, PhysReg, RegClass, SeqNum};

/// Why a commit-time flush was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// Memory-order violation (load executed before an older overlapping
    /// store computed its address).
    MemOrder,
    /// SMB validation failure: the bypassed register's value did not match
    /// the memory data at writeback.
    BypassMispredict,
}

/// Destination bookkeeping of a µ-op.
#[derive(Debug, Clone, Copy)]
pub struct DstInfo {
    /// Architectural destination.
    pub arch: ArchReg,
    /// Newly mapped physical register (fresh, or shared for ME/SMB).
    pub new_preg: PhysReg,
    /// Previous mapping (reclaimed at/after commit).
    pub old_preg: PhysReg,
    /// Whether `new_preg` came from the free list.
    pub fresh_alloc: bool,
    /// §4.3.4 flag filter: the overwritten mapping was marked
    /// possibly-shared, so reclaiming must CAM the tracker. (Kept as a
    /// statistic; the simulator always CAMs for correctness.)
    pub needs_cam: bool,
}

/// SMB bypass bookkeeping of a load.
#[derive(Debug, Clone, Copy)]
pub struct BypassInfo {
    /// The shared (producer's) physical register.
    pub preg: PhysReg,
    /// Its class.
    pub class: RegClass,
    /// Whether validation will succeed (oracle values compared at rename;
    /// *detected* at writeback).
    pub correct: bool,
    /// Whether the producer was already committed (lazy-reclaim bypass).
    pub from_committed: bool,
}

/// Control-flow bookkeeping of a branch µ-op. The predictor-side checkpoint
/// payloads live in the simulator (type-erased here via the `ckpt` index).
#[derive(Debug, Clone, Copy)]
pub struct BranchInfo {
    /// Branch kind.
    pub kind: BranchKind,
    /// Predicted next static index.
    pub pred_next: u32,
    /// Architectural next static index.
    pub actual_next: u32,
    /// Architectural direction (conditional branches).
    pub taken: bool,
    /// Predicted direction.
    pub pred_taken: bool,
    /// Set at fetch when the prediction is known wrong; resolution at
    /// execute triggers recovery.
    pub mispredicted: bool,
    /// Simulator-side checkpoint handle (index into its checkpoint table).
    pub ckpt: Option<u64>,
}

/// One reorder buffer entry.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Sequence number (identity).
    pub seq: SeqNum,
    /// PC.
    pub pc: Addr,
    /// Static index.
    pub sidx: u32,
    /// µ-op kind.
    pub kind: UopKind,
    /// Fetched on a mispredicted path.
    pub wrong_path: bool,
    /// Execution finished (or µ-op needs no execution).
    pub completed: bool,
    /// Architecturally committed (awaiting release in lazy mode).
    pub committed: bool,
    /// Destination bookkeeping.
    pub dst: Option<DstInfo>,
    /// Accepted sharing request (ME or SMB), for sharer-commit and
    /// squash-walk tracker events.
    pub share: Option<ShareRequest>,
    /// The µ-op was an eliminated move (never issues).
    pub eliminated: bool,
    /// SMB bypass state (loads).
    pub bypass: Option<BypassInfo>,
    /// Memory reference (loads/stores).
    pub mem: Option<MemRef>,
    /// Load queue index.
    pub lq: Option<usize>,
    /// Store queue index.
    pub sq: Option<usize>,
    /// Store data architectural register (DDT training).
    pub store_data: Option<ArchReg>,
    /// Branch bookkeeping.
    pub branch: Option<BranchInfo>,
    /// Pending commit-time flush.
    pub trap: Option<TrapKind>,
    /// Fetch-time history (distance predictor indexing/training).
    pub history: HistorySnapshot,
    /// Oracle result value.
    pub result: u64,
    /// Unique incarnation id: distinguishes re-fetched µ-ops that reuse a
    /// squashed sequence number, so stale execution events are ignored.
    pub uid: u64,
    /// TAGE prediction captured at fetch (trained at commit).
    pub tage_pred: Option<TagePrediction>,
    /// Loads/stores: address generation finished.
    pub agu_done: bool,
    /// Loads: a completion has been scheduled (stop pump retries).
    pub read_scheduled: bool,
}

impl regshare_types::snapshot::Snap for TrapKind {
    fn encode(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        w.put_u8(match self {
            TrapKind::MemOrder => 0,
            TrapKind::BypassMispredict => 1,
        });
    }
    fn decode(
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<Self, regshare_types::snapshot::SnapError> {
        match r.get_u8()? {
            0 => Ok(TrapKind::MemOrder),
            1 => Ok(TrapKind::BypassMispredict),
            _ => Err(r.corrupt("TrapKind tag")),
        }
    }
}

regshare_types::impl_snap!(DstInfo {
    arch,
    new_preg,
    old_preg,
    fresh_alloc,
    needs_cam
});

regshare_types::impl_snap!(BypassInfo {
    preg,
    class,
    correct,
    from_committed
});

regshare_types::impl_snap!(BranchInfo {
    kind,
    pred_next,
    actual_next,
    taken,
    pred_taken,
    mispredicted,
    ckpt
});

regshare_types::impl_snap!(RobEntry {
    seq,
    pc,
    sidx,
    kind,
    wrong_path,
    completed,
    committed,
    dst,
    share,
    eliminated,
    bypass,
    mem,
    lq,
    sq,
    store_data,
    branch,
    trap,
    history,
    result,
    uid,
    tage_pred,
    agu_done,
    read_scheduled
});

/// The reorder buffer. See the module docs for the pointer discipline.
#[derive(Debug)]
pub struct Rob {
    slots: Vec<Option<RobEntry>>,
    capacity: usize,
    release_seq: u64,
    head_seq: u64,
    tail_seq: u64,
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    pub fn new(capacity: usize) -> Rob {
        Rob {
            slots: vec![None; capacity],
            capacity,
            release_seq: 0,
            head_seq: 0,
            tail_seq: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied entries (including committed-but-unreleased).
    pub fn occupancy(&self) -> usize {
        (self.tail_seq - self.release_seq) as usize
    }

    /// In-flight (un-committed) entries.
    pub fn in_flight(&self) -> usize {
        (self.tail_seq - self.head_seq) as usize
    }

    /// Whether an entry can be allocated.
    pub fn has_space(&self) -> bool {
        self.occupancy() < self.capacity
    }

    /// Sequence number the next allocation must carry.
    pub fn next_seq(&self) -> SeqNum {
        SeqNum(self.tail_seq)
    }

    /// Oldest in-flight sequence number (commit head).
    pub fn head_seq(&self) -> SeqNum {
        SeqNum(self.head_seq)
    }

    /// Oldest unreleased sequence number.
    pub fn release_seq(&self) -> SeqNum {
        SeqNum(self.release_seq)
    }

    #[inline]
    fn slot_of(&self, seq: SeqNum) -> usize {
        (seq.0 % self.capacity as u64) as usize
    }

    /// Allocates the entry for `entry.seq` (which must equal
    /// [`Rob::next_seq`]).
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or the sequence number is out of order.
    pub fn alloc(&mut self, entry: RobEntry) -> usize {
        assert!(self.has_space(), "ROB overflow");
        assert_eq!(entry.seq.0, self.tail_seq, "out-of-order ROB allocation");
        let slot = self.slot_of(entry.seq);
        debug_assert!(self.slots[slot].is_none(), "ROB slot still occupied");
        self.slots[slot] = Some(entry);
        self.tail_seq += 1;
        slot
    }

    /// The entry holding `seq`, if still present (in-flight or
    /// committed-but-unreleased).
    pub fn get(&self, seq: SeqNum) -> Option<&RobEntry> {
        let slot = self.slot_of(seq);
        self.slots[slot].as_ref().filter(|e| e.seq == seq)
    }

    /// Mutable variant of [`Rob::get`].
    pub fn get_mut(&mut self, seq: SeqNum) -> Option<&mut RobEntry> {
        let slot = self.slot_of(seq);
        self.slots[slot].as_mut().filter(|e| e.seq == seq)
    }

    /// The oldest in-flight entry, if any.
    pub fn head(&self) -> Option<&RobEntry> {
        if self.head_seq == self.tail_seq {
            None
        } else {
            self.get(SeqNum(self.head_seq))
        }
    }

    /// Marks the head committed and advances the commit pointer. In eager
    /// mode the caller immediately follows with [`Rob::release_next`].
    ///
    /// # Panics
    ///
    /// Panics if there is no in-flight head.
    pub fn commit_head(&mut self) -> &mut RobEntry {
        assert!(self.head_seq < self.tail_seq);
        let seq = SeqNum(self.head_seq);
        self.head_seq += 1;
        let e = self.get_mut(seq).expect("head entry present");
        e.committed = true;
        e
    }

    /// Releases (drops) the oldest committed entry, returning it for
    /// reclaim processing. Returns `None` when release has caught up with
    /// the commit head.
    pub fn release_next(&mut self) -> Option<RobEntry> {
        if self.release_seq == self.head_seq {
            return None;
        }
        let seq = SeqNum(self.release_seq);
        let slot = self.slot_of(seq);
        let e = self.slots[slot].take().expect("released entry present");
        debug_assert_eq!(e.seq, seq);
        debug_assert!(e.committed);
        self.release_seq += 1;
        Some(e)
    }

    /// Squashes every entry younger than `after`, invoking `f` on each
    /// (youngest-first order is *not* guaranteed), and resets the tail.
    pub fn squash_younger(&mut self, after: SeqNum, mut f: impl FnMut(&RobEntry)) -> usize {
        let mut n = 0;
        for slot in &mut self.slots {
            if matches!(slot, Some(e) if e.seq > after && !e.committed) {
                let e = slot.take().expect("checked above");
                f(&e);
                n += 1;
            }
        }
        self.tail_seq = (after.0 + 1).max(self.head_seq);
        n
    }

    /// Squashes *all* in-flight entries (commit-time flush), invoking `f`
    /// on each, and resets the tail to the commit head.
    pub fn squash_all_inflight(&mut self, mut f: impl FnMut(&RobEntry)) -> usize {
        let mut n = 0;
        for slot in &mut self.slots {
            if matches!(slot, Some(e) if !e.committed) {
                let e = slot.take().expect("checked above");
                f(&e);
                n += 1;
            }
        }
        self.tail_seq = self.head_seq;
        n
    }

    /// Iterates over present (in-flight or unreleased) entries.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.slots.iter().flatten()
    }
}

impl regshare_types::snapshot::Snapshot for Rob {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.slots.encode(w);
        w.put_u64(self.release_seq);
        w.put_u64(self.head_seq);
        w.put_u64(self.tail_seq);
    }

    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let slots: Vec<Option<RobEntry>> = Snap::decode(r)?;
        if slots.len() != self.capacity {
            return Err(r.corrupt("Rob capacity"));
        }
        let release_seq = r.get_u64()?;
        let head_seq = r.get_u64()?;
        let tail_seq = r.get_u64()?;
        if release_seq > head_seq || head_seq > tail_seq {
            return Err(r.corrupt("Rob pointer order"));
        }
        self.slots = slots;
        self.release_seq = release_seq;
        self.head_seq = head_seq;
        self.tail_seq = tail_seq;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> RobEntry {
        RobEntry {
            seq: SeqNum(seq),
            pc: 0x400000 + seq * 4,
            sidx: seq as u32,
            kind: UopKind::IntAlu,
            wrong_path: false,
            completed: false,
            committed: false,
            dst: None,
            share: None,
            eliminated: false,
            bypass: None,
            mem: None,
            lq: None,
            sq: None,
            store_data: None,
            branch: None,
            trap: None,
            history: HistorySnapshot::default(),
            result: 0,
            uid: seq,
            tage_pred: None,
            agu_done: false,
            read_scheduled: false,
        }
    }

    #[test]
    fn alloc_get_commit_release_cycle() {
        let mut rob = Rob::new(4);
        for i in 0..3 {
            rob.alloc(entry(i));
        }
        assert_eq!(rob.occupancy(), 3);
        assert_eq!(rob.head().unwrap().seq, SeqNum(0));
        rob.get_mut(SeqNum(0)).unwrap().completed = true;
        rob.commit_head();
        assert_eq!(rob.in_flight(), 2);
        assert_eq!(rob.occupancy(), 3, "lazy: entry retained until release");
        let released = rob.release_next().unwrap();
        assert_eq!(released.seq, SeqNum(0));
        assert_eq!(rob.occupancy(), 2);
        assert!(rob.release_next().is_none());
    }

    #[test]
    fn committed_entries_remain_reachable_until_release() {
        let mut rob = Rob::new(4);
        rob.alloc(entry(0));
        rob.get_mut(SeqNum(0)).unwrap().completed = true;
        rob.commit_head();
        // Still reachable for SMB-from-committed.
        assert!(rob.get(SeqNum(0)).is_some());
        assert!(rob.get(SeqNum(0)).unwrap().committed);
        rob.release_next();
        assert!(rob.get(SeqNum(0)).is_none());
    }

    #[test]
    fn capacity_counts_unreleased() {
        let mut rob = Rob::new(2);
        rob.alloc(entry(0));
        rob.alloc(entry(1));
        assert!(!rob.has_space());
        rob.get_mut(SeqNum(0)).unwrap().completed = true;
        rob.commit_head();
        // Committed but unreleased: still no space (the paper's trade-off).
        assert!(!rob.has_space());
        rob.release_next();
        assert!(rob.has_space());
        rob.alloc(entry(2));
    }

    #[test]
    fn squash_younger_resets_tail() {
        let mut rob = Rob::new(8);
        for i in 0..6 {
            rob.alloc(entry(i));
        }
        let mut squashed = Vec::new();
        let n = rob.squash_younger(SeqNum(2), |e| squashed.push(e.seq.0));
        assert_eq!(n, 3);
        squashed.sort();
        assert_eq!(squashed, vec![3, 4, 5]);
        assert_eq!(rob.next_seq(), SeqNum(3));
        // Re-allocate the squashed range.
        rob.alloc(entry(3));
        assert!(rob.get(SeqNum(3)).is_some());
    }

    #[test]
    fn squash_all_inflight_spares_committed() {
        let mut rob = Rob::new(8);
        for i in 0..4 {
            rob.alloc(entry(i));
        }
        rob.get_mut(SeqNum(0)).unwrap().completed = true;
        rob.commit_head();
        let n = rob.squash_all_inflight(|_| {});
        assert_eq!(n, 3);
        assert_eq!(rob.next_seq(), SeqNum(1));
        assert!(
            rob.get(SeqNum(0)).is_some(),
            "committed entry kept for release"
        );
    }

    #[test]
    #[should_panic]
    fn out_of_order_alloc_panics() {
        let mut rob = Rob::new(4);
        rob.alloc(entry(5));
    }

    #[test]
    fn seq_reuse_after_wraparound() {
        let mut rob = Rob::new(2);
        for i in 0..10u64 {
            rob.alloc(entry(i));
            rob.get_mut(SeqNum(i)).unwrap().completed = true;
            rob.commit_head();
            rob.release_next();
        }
        assert_eq!(rob.next_seq(), SeqNum(10));
        assert_eq!(rob.occupancy(), 0);
    }
}
